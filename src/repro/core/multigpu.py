"""Multi-GPU peeling — the paper's future-work sketch (Section VII).

"We can partition a graph among worker GPUs running our kernels, but
degree updates of border vertices would be aggregated afterwards, which
can be computed at a master GPU.  Moreover, the updates may cause new
border vertices to be in k-shell, so more than one round may be needed
to compute a k-shell."

The implementation follows that sketch exactly:

* vertices are partitioned into contiguous, edge-balanced ranges; each
  worker device holds its slice of the CSR arrays plus a full-length
  replica of the degree array;
* per peel round ``k``, the *master* identifies the current k-shell
  frontier from its aggregated degree array, seeds each owner's block
  buffers with its members, and the workers run the unmodified ``loop``
  kernel over their partition (remote neighbors are decremented in the
  local replica; appends are disabled — crossings surface at the next
  aggregation instead);
* after each sub-round, the master aggregates the replicas' degree
  deltas (the PCIe transfer and reduction are costed), clamps vertices
  over-decremented below ``k`` back to ``k`` — the cross-device
  analogue of the Fig. 6 restore trick — and broadcasts;
* sub-rounds repeat while the aggregation exposes new k-shell members,
  exactly as the sketch warns ("more than one round may be needed").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

import repro.core.fastsim  # noqa: F401  (registers vectorized executors)
from repro.core.loop_kernel import loop_kernel
from repro.core.variants import VariantConfig, get_variant
from repro.errors import ReproError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device
from repro.gpusim.engine import ExecutionEngine
from repro.gpusim.spec import DeviceSpec
from repro.graph.csr import CSRGraph
from repro.result import DecompositionResult

if TYPE_CHECKING:
    from repro.memtrace.report import MemtraceReport

__all__ = ["multi_gpu_peel", "partition_ranges", "MultiGpuOptions"]


@dataclass(frozen=True)
class MultiGpuOptions:
    """Tunables of the multi-GPU run."""

    #: PCIe-style transfer cost for the aggregation step, cycles per
    #: transferred degree word (per worker, each direction)
    transfer_cycles_per_word: float = 0.5
    #: master-side reduction cost, cycles per degree word per worker
    reduce_cycles_per_word: float = 0.25


def partition_ranges(graph: CSRGraph, parts: int) -> list[tuple[int, int]]:
    """Contiguous vertex ranges with roughly equal edge counts."""
    if parts < 1:
        raise ReproError("need at least one partition")
    n = graph.num_vertices
    total = graph.neighbors.size
    if n == 0:
        return [(0, 0)] * parts
    targets = [round(total * (p + 1) / parts) for p in range(parts)]
    bounds = np.searchsorted(graph.offsets[1:], targets, side="left") + 1
    ranges = []
    lo = 0
    for p in range(parts):
        hi = int(min(n, max(lo, bounds[p]))) if p < parts - 1 else n
        ranges.append((lo, hi))
        lo = hi
    return ranges


def multi_gpu_peel(
    graph: CSRGraph,
    num_devices: int = 2,
    variant: str | VariantConfig = "ours",
    spec: DeviceSpec | None = None,
    cost_model: CostModel | None = None,
    options: MultiGpuOptions | None = None,
    sanitize: bool = False,
    memtrace: bool = False,
    engine: "str | ExecutionEngine | None" = None,
    critpath: bool = False,
) -> DecompositionResult:
    """Decompose ``graph`` across ``num_devices`` simulated GPUs.

    ``engine`` selects the execution engine every worker device runs
    its kernels on (see :mod:`repro.gpusim.engine`); engines are
    byte-identical, so partition results never depend on the choice.

    Returns a :class:`DecompositionResult` whose ``simulated_ms`` sums
    the parallel sub-round time (the *slowest* worker each sub-round)
    plus the aggregation steps, and whose ``peak_memory_bytes`` is the
    busiest single device — the quantity that decides whether a graph
    too big for one GPU fits a partitioned cluster.

    With ``sanitize=True`` every worker device shares one
    :class:`~repro.sanitize.racecheck.KernelSanitizer`, so the report on
    ``result.sanitizer`` aggregates findings across the whole cluster.

    With ``memtrace=True`` each worker device gets its own
    :class:`~repro.memtrace.tracker.MemoryTracker` (named ``gpu0``,
    ``gpu1``, ...); the merged
    :class:`~repro.memtrace.report.MemtraceReport` on
    ``result.memtrace`` carries one worker section per device, and
    ``stats["per_device_peak_bytes"]`` lists every worker's peak so the
    headline max is auditable.

    With ``critpath=True`` every sub-round's coordinator cost terms and
    worker kernel timings are recorded and compiled into a
    :class:`~repro.obs.critpath.CritPathReport` on ``result.critpath``:
    each round is classified compute-, straggler-, or exchange-bound,
    and the what-if table projects the speedup ceiling of free atomics,
    perfect coalescing, zero barriers, and an infinite interconnect.
    Observability only — core numbers, ``simulated_ms`` and counters are
    byte-identical with or without it.
    """
    cfg = variant if isinstance(variant, VariantConfig) else get_variant(variant)
    spec = spec or DeviceSpec()
    opts = options or MultiGpuOptions()
    sanitizer = None
    if sanitize:
        from repro.sanitize.racecheck import KernelSanitizer

        sanitizer = KernelSanitizer()
    algorithm = f"gpu-multi{num_devices}-{cfg.name}"
    trackers = None
    if memtrace:
        from repro.memtrace.tracker import MemoryTracker

        trackers = [
            MemoryTracker(worker=f"gpu{d}") for d in range(num_devices)
        ]
        for mt in trackers:
            mt.annotate(variant=cfg.name, algorithm=algorithm)

    def _memtrace_report() -> "MemtraceReport | None":
        if trackers is None:
            return None
        from repro.memtrace.report import MemtraceReport

        return MemtraceReport.from_trackers(
            trackers, algorithm=algorithm, variant=cfg.name
        )

    n = graph.num_vertices
    if n == 0:
        if trackers is not None:
            for mt in trackers:
                mt.finish(0.0)
        return DecompositionResult(
            core=np.empty(0, dtype=np.int64),
            algorithm=algorithm,
            sanitizer=sanitizer.report if sanitizer is not None else None,
            memtrace=_memtrace_report(),
        )

    ranges = partition_ranges(graph, num_devices)
    devices = [
        Device(
            spec=spec, cost_model=cost_model, sanitizer=sanitizer,
            memtracer=trackers[d] if trackers is not None else None,
            engine=engine, name=f"gpu{d}", profile=critpath,
        )
        for d in range(num_devices)
    ]
    workers = []
    for d, (lo, hi) in enumerate(ranges):
        device = devices[d]
        # the worker's CSR slice: offsets re-based to its first vertex
        local_offsets = (
            graph.offsets[lo : hi + 1] - graph.offsets[lo]
        )
        local_neighbors = graph.neighbors[
            graph.offsets[lo] : graph.offsets[hi]
        ]
        workers.append({
            "range": (lo, hi),
            "device": device,
            "offsets": device.malloc("offsets", local_offsets),
            "neighbors": device.malloc("neighbors", local_neighbors),
            "deg": device.malloc("deg", graph.degrees),  # full replica
            "buf": device.malloc(
                "buf", spec.default_grid_dim * spec.block_buffer_capacity
            ),
            "tails": device.malloc("buf_tails", spec.default_grid_dim),
            "count": device.malloc("gpu_count", 1),
            "collected": 0,
        })

    capacity = spec.block_buffer_capacity
    shared_capacity = spec.shared_buffer_capacity if cfg.shared_buffer else 0
    grid_dim = spec.default_grid_dim
    cost = devices[0].cost_model
    coordinator_cycles = 0.0
    raw_rounds: list[dict] = []  # per sub-round cost terms for critpath
    alive = np.ones(n, dtype=bool)
    master_deg = graph.degrees.astype(np.int64).copy()
    removed = 0
    k = 0
    sub_rounds = 0
    max_rounds = graph.max_degree + 2
    while removed < n:
        if k > max_rounds:
            raise ReproError(
                f"multi-GPU peeling stalled at round {k} "
                f"({removed}/{n} removed)"
            )
        if trackers is not None:
            for mt in trackers:
                mt.set_round(k)
        while True:  # sub-rounds of round k
            # master: the current k-shell frontier (clamping guarantees
            # alive degrees never sit below k)
            frontier = np.flatnonzero(alive & (master_deg <= k))
            if frontier.size == 0:
                break
            sub_rounds += 1
            alive[frontier] = False
            removed += frontier.size
            filter_cycles = n * 1.0  # master frontier filter
            coordinator_cycles += filter_cycles
            pre = master_deg.copy()
            worker_ms = []
            seed_cycles = []
            round_launches: list[dict | None] = []
            for w in workers:
                device = w["device"]
                lo, hi = w["range"]
                mine = frontier[(frontier >= lo) & (frontier < hi)]
                before_ms = device.elapsed_ms
                # seed the owner's block buffers round-robin (the role
                # the scan kernel plays on a single device)
                w["tails"].data[:] = 0
                for b in range(grid_dim):
                    share = mine[b::grid_dim]
                    w["buf"].data[
                        b * capacity : b * capacity + share.size
                    ] = share
                    w["tails"].data[b] = share.size
                seed = mine.size * opts.transfer_cycles_per_word
                seed_cycles.append(seed)
                coordinator_cycles += seed
                stats = None
                if mine.size:
                    # own_range (lo, lo): offsets index from lo, but the
                    # ownership window is empty, disabling appends
                    stats = device.launch(
                        loop_kernel,
                        args=(k, w["offsets"], w["neighbors"], w["deg"],
                              w["buf"], w["tails"], w["count"], capacity,
                              shared_capacity, cfg, (lo, lo)),
                    )
                worker_ms.append(device.elapsed_ms - before_ms)
                round_launches.append(
                    None if stats is None
                    else {"device": device.name, "kernel": "loop_kernel",
                          "stats": stats}
                )
            # ---- master aggregation of border-vertex degree updates ----
            deltas = np.stack([w["deg"].data - pre for w in workers])
            merged = pre + deltas.sum(axis=0)
            # cross-device restore: an alive vertex driven below k by
            # concurrent remote decrements belongs to the k-shell
            merged[alive] = np.maximum(merged[alive], k)
            merged[frontier] = k  # collected this sub-round: core = k
            master_deg = merged
            for w in workers:
                w["deg"].data[:] = merged
            words = n * (num_devices * 2)  # gather + broadcast
            exchange_cycles = (
                words * opts.transfer_cycles_per_word
                + n * num_devices * opts.reduce_cycles_per_word
            )
            coordinator_cycles += exchange_cycles
            # parallel workers: the sub-round costs the slowest one.
            # Per-worker cycles are recorded with the exact expression
            # the accumulator uses, so max(worker_cycles) is the same
            # float as max(worker_ms) * 1e6 * clock_ghz (scaling by a
            # positive constant preserves the argmax).
            worker_cycles = [
                ms * 1e6 * cost.clock_ghz for ms in worker_ms
            ]
            if worker_cycles:
                coordinator_cycles += max(worker_cycles)
            if critpath:
                raw_rounds.append({
                    "k": k,
                    "frontier": int(frontier.size),
                    "filter_cycles": filter_cycles,
                    "seed_cycles": seed_cycles,
                    "worker_cycles": worker_cycles,
                    "exchange_cycles": exchange_cycles,
                    "launches": round_launches,
                })
        k += 1

    core = master_deg
    cost = devices[0].cost_model
    total_ms = cost.cycles_to_ms(coordinator_cycles)
    cpath_report = None
    if critpath:
        from repro.obs.critpath import build_multi_critpath
        from repro.staticheck.bounds import launch_env

        cpath_report = build_multi_critpath(
            algorithm=algorithm,
            variant=cfg.name,
            num_devices=num_devices,
            rounds=raw_rounds,
            elapsed_ms=total_ms,
            spec=spec,
            cost=cost,
            transfer_cycles_per_word=opts.transfer_cycles_per_word,
            reduce_cycles_per_word=opts.reduce_cycles_per_word,
            worker_names=[d.name for d in devices],
            cfg=cfg,
            env=launch_env(
                n, len(graph.neighbors), graph.max_degree, spec, cfg, None
            ),
        )
    if trackers is not None:
        for d, device in enumerate(devices):
            device.free_all()
            trackers[d].set_round(None)
            trackers[d].finish(device.elapsed_ms)
    return DecompositionResult(
        core=core,
        algorithm=algorithm,
        simulated_ms=total_ms,
        peak_memory_bytes=max(d.peak_memory_bytes for d in devices),
        rounds=k,
        stats={
            "engine": devices[0].engine.name,
            "num_devices": num_devices,
            "sub_rounds": sub_rounds,
            "partition_ranges": ranges,
            "per_device_ms": [d.elapsed_ms for d in devices],
            "per_device_peak_bytes": [d.peak_memory_bytes for d in devices],
        },
        sanitizer=sanitizer.report if sanitizer is not None else None,
        memtrace=_memtrace_report(),
        critpath=cpath_report,
    )
