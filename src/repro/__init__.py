"""repro — reproduction of "Accelerating k-Core Decomposition by a GPU"
(ICDE 2023).

The package provides:

* :func:`repro.decompose` / :class:`repro.KCoreDecomposer` — the public
  decomposition API (fast native path or simulated-GPU kernels);
* ``repro.graph`` — CSR graphs, IO, generators and the Table I dataset
  registry;
* ``repro.gpusim`` — the SIMT GPU simulator the paper's kernels run on;
* ``repro.core`` — the paper's peeling kernels and ablation variants;
* ``repro.cpu`` / ``repro.multicore`` — the CPU baselines of Table IV;
* ``repro.systems`` — Medusa / Gunrock / GSWITCH / VETGA emulations;
* ``repro.analysis`` — shells, core hierarchy, and the Fig. 10 case
  study;
* ``repro.bench`` — the harness that regenerates the paper's tables;
* ``repro.obs`` — the structured tracing / metrics layer
  (``docs/OBSERVABILITY.md``);
* ``repro.profile`` — the kernel profiler: speed-of-light bound
  attribution, per-round aggregation, and flamegraph export
  (``docs/OBSERVABILITY.md``, "Profiling").
* ``repro.memtrace`` — memory telemetry: allocation lifetimes,
  per-round high-water marks, and exact peak attribution
  (``docs/OBSERVABILITY.md``, "Memory telemetry").
"""

from repro.api import ALGORITHMS, algorithm_names, decompose
from repro.core.decomposer import KCoreDecomposer
from repro.graph.csr import CSRGraph
from repro.memtrace import MemoryTracker, MemtraceReport
from repro.obs import Tracer, start_tracing, stop_tracing, tracing
from repro.profile import KernelProfiler, ProfileReport
from repro.result import DecompositionResult

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "algorithm_names",
    "decompose",
    "KCoreDecomposer",
    "CSRGraph",
    "DecompositionResult",
    "KernelProfiler",
    "ProfileReport",
    "MemoryTracker",
    "MemtraceReport",
    "Tracer",
    "start_tracing",
    "stop_tracing",
    "tracing",
    "__version__",
]
