"""Common result type returned by every k-core decomposition program.

Every algorithm in this repository — the simulated-GPU peeling kernels,
the CPU baselines, and the graph-parallel system emulations — returns a
:class:`DecompositionResult` so that the benchmark harness can compare
them uniformly (simulated milliseconds, peak memory, and of course the
core numbers themselves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np


@dataclass(frozen=True)
class DecompositionResult:
    """Outcome of one k-core decomposition run.

    Attributes:
        core: ``int64`` array of length ``|V|``; ``core[v]`` is the core
            number of vertex ``v``.
        algorithm: registry name of the program that produced the result
            (e.g. ``"gpu-ours"``, ``"bz"``, ``"gunrock"``).
        simulated_ms: simulated wall-clock time in milliseconds under the
            program's cost model.  ``0.0`` for programs that do not model
            time.
        peak_memory_bytes: peak (simulated device or modelled host)
            memory in bytes.  ``0`` when not modelled.
        rounds: number of peel rounds (``k_max + 1``) or h-index
            iterations the program executed.
        stats: free-form per-program counters (kernel launches, atomic
            ops, memory transactions, ...), for ablation reporting.
        counters: flat ``name -> float`` observability metrics with the
            documented names of ``docs/OBSERVABILITY.md`` (``device.*``,
            ``host.*``, ``frontier.*``, ``buffer.*``, ``kernel.*``,
            ``system.*``).  Unlike ``stats`` these names are a stable,
            cross-program surface; empty for programs that predate the
            tracing layer or model nothing.
        trace: the :class:`~repro.obs.tracer.Tracer` that recorded the
            run when tracing was enabled (``KCoreDecomposer(trace=True)``
            or an active process-wide tracer), else ``None``.  Export
            with ``result.trace.write("trace.json")`` and load in
            Perfetto.
        sanitizer: the :class:`~repro.sanitize.report.SanitizerReport`
            collected when the run was sanitized (``gpu_peel(...,
            sanitize=True)``, ``KCoreDecomposer(sanitize=True)`` or CLI
            ``--sanitize``), else ``None``.  ``result.sanitizer.clean``
            is True when no detector fired; see ``docs/SANITIZER.md``.
        staticheck: the :class:`~repro.sanitize.report.SanitizerReport`
            of the static analyzers when the run was certified
            (``gpu_peel(..., staticheck=True)`` / ``dataflow=True`` or
            CLI ``--staticheck`` / ``--dataflow``), else ``None``.  The
            resource tier's findings use the ``static-bound`` /
            ``static-resource`` / ``uncertified-kernel`` detectors; the
            dataflow tier's use ``unproven-race-freedom`` /
            ``divergence-bound`` / ``engine-precondition``.  Both tiers
            merge into this one report when enabled together; see
            ``docs/STATIC_ANALYSIS.md``.
        profile: the :class:`~repro.profile.report.ProfileReport` of the
            run when profiling was enabled (``gpu_peel(...,
            profile=True)``, ``KCoreDecomposer(profile=True)`` or CLI
            ``--ncu``), else ``None``.  ``result.profile.render()``
            prints the speed-of-light table,
            ``result.profile.to_json()`` emits the
            ``repro.profile/v1`` record, and
            ``result.profile.write_folded(path)`` exports a flamegraph;
            see the "Profiling" section of ``docs/OBSERVABILITY.md``.
        memtrace: the :class:`~repro.memtrace.report.MemtraceReport` of
            the run when memory tracing was enabled (``gpu_peel(...,
            memtrace=True)``, ``KCoreDecomposer(memtrace=True)`` or CLI
            ``--memtrace``), else ``None``.
            ``result.memtrace.breakdown()`` attributes the peak exactly,
            ``result.memtrace.render()`` prints the allocation timeline,
            and ``result.memtrace.to_json()`` emits the
            ``repro.memtrace/v1`` record; see the "Memory telemetry"
            section of ``docs/OBSERVABILITY.md``.
        report: the :class:`~repro.obs.runreport.RunReport` merging
            every enabled telemetry vertical into one validated
            ``repro.runreport/v1`` record, attached when requested
            (``gpu_peel(..., report=True)``,
            ``KCoreDecomposer(report=True)`` or CLI ``--report``), else
            ``None``.  ``result.report.render()`` prints the unified
            summary, ``result.report.write(path)`` emits the JSON
            artifact, and ``result.report.validate()`` re-checks the
            cross-layer consistency invariants; see the "Run reports"
            section of ``docs/OBSERVABILITY.md``.
        critpath: the :class:`~repro.obs.critpath.CritPathReport` of
            the run — causal DAG, per-span slack, exact critical-path
            accounting, and the ranked what-if speedup-ceiling table —
            attached when requested (``gpu_peel(..., critpath=True)``,
            ``multi_gpu_peel(..., critpath=True)``,
            ``KCoreDecomposer(critpath=True)`` or CLI ``--critpath``),
            else ``None``.  ``result.critpath.render()`` prints the
            table, ``result.critpath.validate()`` re-derives every
            figure exactly, and ``result.critpath.to_json()`` emits the
            ``repro.critpath/v1`` record; see the "Critical path &
            what-if" section of ``docs/OBSERVABILITY.md``.
    """

    core: np.ndarray
    algorithm: str
    simulated_ms: float = 0.0
    peak_memory_bytes: int = 0
    rounds: int = 0
    stats: Mapping[str, Any] = field(default_factory=dict)
    counters: Mapping[str, float] = field(default_factory=dict)
    trace: Any = None
    sanitizer: Any = None
    staticheck: Any = None
    profile: Any = None
    memtrace: Any = None
    report: Any = None
    critpath: Any = None

    def __post_init__(self) -> None:
        core = np.asarray(self.core, dtype=np.int64)
        object.__setattr__(self, "core", core)

    @property
    def num_vertices(self) -> int:
        """Number of vertices the decomposition covers."""
        return int(self.core.shape[0])

    @property
    def kmax(self) -> int:
        """Largest core number (the graph's degeneracy); 0 if empty."""
        if self.core.size == 0:
            return 0
        return int(self.core.max())

    def core_number_of(self, vertex: int) -> int:
        """Core number of a single vertex."""
        return int(self.core[vertex])

    def shell(self, k: int) -> np.ndarray:
        """Vertices whose core number is exactly ``k`` (the *k-shell*)."""
        return np.flatnonzero(self.core == k)

    def core_vertices(self, k: int) -> np.ndarray:
        """Vertices whose core number is at least ``k`` (the *k-core*)."""
        return np.flatnonzero(self.core >= k)

    def shell_sizes(self) -> np.ndarray:
        """Array of length ``kmax + 1`` with the size of each shell."""
        if self.core.size == 0:
            return np.zeros(1, dtype=np.int64)
        return np.bincount(self.core, minlength=self.kmax + 1).astype(np.int64)

    def agrees_with(self, other: "DecompositionResult") -> bool:
        """True when both results assign identical core numbers."""
        return bool(np.array_equal(self.core, other.core))
