"""Kernel sanitizer: race, barrier and determinism analysis.

The paper's peeling kernels are correct only under a subtle
atomic/barrier discipline — ballot-scan compaction, shared-memory
buffers, the two-stage EC compaction — and parallel peeling bugs are
silent: they produce wrong core numbers, not crashes.  This package
*checks* the discipline, two ways:

* **dynamic racecheck** (:mod:`repro.sanitize.racecheck`) — attach a
  :class:`KernelSanitizer` to a device (``Device(sanitize=True)``,
  ``gpu_peel(..., sanitize=True)``, ``KCoreDecomposer(sanitize=True)``
  or CLI ``--sanitize``) and every kernel launch keeps shadow access
  logs per barrier epoch, reporting shared- and global-memory races,
  barrier divergence and ballot hazards with ``file:line`` provenance;

* **static lint** (:mod:`repro.sanitize.lint`) — parse kernel modules
  and enforce the simulator's structural rules (legal yields, no wall
  clock, no RNG, no host-array mutation, barrier-separated shared
  read-back).  ``scripts/lint_kernels.py`` runs it over every shipped
  kernel in CI.

Both produce :class:`SanitizerReport` objects; a decomposition run
carries its report as ``result.sanitizer``.  See ``docs/SANITIZER.md``
for the detector catalogue and how to read or suppress findings.
"""

from repro.sanitize.lint import (
    default_kernel_paths,
    lint_file,
    lint_module,
    lint_paths,
    lint_repo,
    lint_source,
)
from repro.sanitize.findings import (
    FINDINGS_SCHEMA,
    findings_record,
    write_findings,
)
from repro.sanitize.racecheck import KernelSanitizer, LaunchMonitor
from repro.sanitize.report import DETECTORS, SanitizerFinding, SanitizerReport

__all__ = [
    "DETECTORS",
    "FINDINGS_SCHEMA",
    "KernelSanitizer",
    "LaunchMonitor",
    "SanitizerFinding",
    "SanitizerReport",
    "findings_record",
    "write_findings",
    "default_kernel_paths",
    "lint_file",
    "lint_module",
    "lint_paths",
    "lint_repo",
    "lint_source",
]
