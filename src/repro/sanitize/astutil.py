"""Shared AST helpers for the static analysis passes.

Three passes walk kernel ASTs — the lint rules in
:mod:`repro.sanitize.lint`, the site-inventory pass in
:mod:`repro.staticheck.absint`, and the dataflow interpreter in
:mod:`repro.staticheck.dataflow`.  They agree on a handful of
syntactic questions ("what does this attribute chain spell?", "is this
statement a barrier yield?"); this module is the single answer so the
passes cannot drift apart.

All helpers are pure functions over :mod:`ast` nodes; none import
simulator state.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence

__all__ = [
    "SENTINELS",
    "WARP_NAMES",
    "dotted",
    "iter_own_scope",
    "mentions",
    "is_sentinel_yield",
    "yields_barrier",
]

#: the only tokens a kernel generator may yield (``ctx.BARRIER`` ends a
#: barrier epoch; ``ctx.STEP`` is a plain scheduling point)
SENTINELS = ("BARRIER", "STEP")

#: names whose appearance in a branch test marks it warp-dependent:
#: lanes of a warp (or warps of a block) no longer advance uniformly
#: past such a test
WARP_NAMES = ("warp_id", "global_warp_id", "lanes", "should_preempt")


def dotted(node: ast.AST) -> Optional[str]:
    """``"a.b.c"`` for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_own_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            stack.extend(ast.iter_child_nodes(node))


def mentions(node: ast.AST, names: Sequence[str]) -> bool:
    """True when any Name or Attribute leaf in ``node`` is in ``names``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in names:
            return True
        if isinstance(sub, ast.Name) and sub.id in names:
            return True
    return False


def is_sentinel_yield(value: Optional[ast.AST], ctx_name: str) -> bool:
    """True when a yielded value is ``ctx.BARRIER``/``ctx.STEP`` (or the
    bare module-level ``BARRIER``/``STEP`` sentinels)."""
    if isinstance(value, ast.Attribute):
        return (
            isinstance(value.value, ast.Name)
            and value.value.id == ctx_name
            and value.attr in SENTINELS
        )
    if isinstance(value, ast.Name):
        return value.id in SENTINELS
    return False


def yields_barrier(stmt: ast.stmt, ctx_name: str) -> bool:
    """True for a statement-level ``yield ctx.BARRIER`` (or ``BARRIER``)."""
    if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Yield)):
        return False
    value = stmt.value.value
    if isinstance(value, ast.Attribute):
        return (
            isinstance(value.value, ast.Name)
            and value.value.id == ctx_name
            and value.attr == "BARRIER"
        )
    return isinstance(value, ast.Name) and value.id == "BARRIER"
