"""Structured findings produced by the kernel sanitizer.

A :class:`SanitizerFinding` is one diagnosed hazard — a dynamic race
observed by the racecheck monitor, or a rule violation found by the
static lint pass.  A :class:`SanitizerReport` aggregates the findings
of a whole run (every kernel launch of a device, or every module of a
lint sweep) and is what ``KCoreDecomposer(sanitize=True)`` attaches to
``result.sanitizer``.

Detector names are a stable surface (see ``docs/SANITIZER.md``):

========================  =======  ==========================================
detector                  kind     meaning
========================  =======  ==========================================
``shared-race``           dynamic  unsynchronised cross-warp conflict on
                                   block shared memory within one barrier
                                   epoch
``global-race``           dynamic  unsynchronised cross-warp conflict on
                                   global memory (cross-block, or same block
                                   without an intervening ``__syncthreads``)
``barrier-divergence``    dynamic  warps of one block retired having passed
                                   different numbers of barrier generations
``ballot-hazard``         dynamic  ``__ballot_sync`` on a predicate derived
                                   from an unsynchronised shared-memory read
``illegal-yield``         lint     a kernel yields something other than the
                                   ``ctx.BARRIER`` / ``ctx.STEP`` sentinels
``wall-clock``            lint     ``time.*`` / ``datetime.*`` inside a
                                   kernel (breaks simulated-time determinism)
``rng``                   lint     ``random`` / ``np.random`` inside a kernel
                                   (``ctx.should_preempt`` is the sanctioned
                                   nondeterminism hook)
``host-mutation``         lint     a kernel mutates a captured host/device
                                   array directly instead of through ``ctx``
``unsynced-shared``       lint     a shared-memory write is read back on a
                                   path with no intervening barrier
``static-bound``          static   a launch's measured ``KernelStats``
                                   exceeded the variant's static resource
                                   certificate (``docs/STATIC_ANALYSIS.md``)
``static-resource``       static   a certificate's shared-memory footprint
                                   cannot fit the device's per-block capacity
``uncertified-kernel``    static   a kernel function (or call edge) is not
                                   covered by the certifier's coverage map
``unproven-race-freedom`` static   the dataflow interpreter could not
                                   discharge a conflicting access pair —
                                   absence of a proof, not presence of a race
                                   (:mod:`repro.staticheck.dataflow`)
``divergence-bound``      static   a launch's measured divergence or
                                   coalescing efficiency escaped the static
                                   bracket the dataflow certificate predicts
``engine-precondition``   static   a launch was served by an execution-engine
                                   tier other than the one the static
                                   precondition analysis proved it must use
``memory-leak``           memory   a device array was still allocated when
                                   the traced program finished
                                   (:mod:`repro.memtrace`)
``double-free``           memory   ``cudaFree`` of an already-freed (or
                                   never-allocated) device array
``use-after-free``        memory   a freed device array was read back to the
                                   host
========================  =======  ==========================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import SanitizerFindingsError

__all__ = ["SanitizerFinding", "SanitizerReport", "DETECTORS"]

#: every detector name the sanitizer can emit: dynamic, lint, the
#: static certifier's (``repro.staticheck``), then the memory
#: tracker's (``repro.memtrace``)
DETECTORS: Tuple[str, ...] = (
    "shared-race",
    "global-race",
    "barrier-divergence",
    "ballot-hazard",
    "illegal-yield",
    "wall-clock",
    "rng",
    "host-mutation",
    "unsynced-shared",
    "static-bound",
    "static-resource",
    "uncertified-kernel",
    "unproven-race-freedom",
    "divergence-bound",
    "engine-precondition",
    "memory-leak",
    "double-free",
    "use-after-free",
)


@dataclass(frozen=True)
class SanitizerFinding:
    """One diagnosed hazard.

    Attributes:
        detector: which detector fired (one of :data:`DETECTORS`).
        severity: ``"error"`` (a correctness hazard) or ``"warning"``
            (suspicious but possibly intentional).
        kernel: the kernel function (dynamic) or ``module:function``
            (lint) the finding belongs to.
        message: human-readable description of the hazard.
        sites: ``file.py:line`` provenance of every involved access —
            two entries for a race (the conflicting pair), one for a
            lint violation.
    """

    detector: str
    severity: str
    kernel: str
    message: str
    sites: Tuple[str, ...] = ()

    def __str__(self) -> str:
        where = f" [{' <-> '.join(self.sites)}]" if self.sites else ""
        return (
            f"{self.severity.upper()} {self.detector} in {self.kernel}: "
            f"{self.message}{where}"
        )


@dataclass
class SanitizerReport:
    """Aggregated sanitizer outcome of one run.

    ``launches_checked`` counts kernel launches the dynamic monitor
    observed; ``modules_linted`` counts files the static pass parsed.
    A report with no findings is *clean*.
    """

    findings: List[SanitizerFinding] = field(default_factory=list)
    launches_checked: int = 0
    modules_linted: int = 0

    @property
    def clean(self) -> bool:
        """True when no detector fired."""
        return not self.findings

    @property
    def errors(self) -> List[SanitizerFinding]:
        """Findings with severity ``error``."""
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[SanitizerFinding]:
        """Findings with severity ``warning``."""
        return [f for f in self.findings if f.severity == "warning"]

    def by_detector(self) -> Dict[str, List[SanitizerFinding]]:
        """Findings grouped by detector name."""
        grouped: Dict[str, List[SanitizerFinding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.detector, []).append(finding)
        return grouped

    def extend(self, findings: List[SanitizerFinding]) -> None:
        """Append findings (deduplicating exact repeats)."""
        seen = set(self.findings)
        for finding in findings:
            if finding not in seen:
                seen.add(finding)
                self.findings.append(finding)

    def merge(self, other: "SanitizerReport") -> None:
        """Fold another report into this one (multi-device runs)."""
        self.extend(other.findings)
        self.launches_checked += other.launches_checked
        self.modules_linted += other.modules_linted

    def summary(self, label: str = "sanitizer") -> str:
        """Multi-line human-readable report; ``label`` names the tool
        that produced it (the static certifier passes ``staticheck``)."""
        header = (
            f"{label}: {len(self.findings)} finding(s) over "
            f"{self.launches_checked} launch(es), "
            f"{self.modules_linted} module(s) linted"
        )
        if self.clean:
            return header + " — clean"
        lines = [header]
        for detector, group in sorted(self.by_detector().items()):
            lines.append(f"  {detector} ({len(group)}):")
            for finding in group:
                lines.append(f"    {finding}")
        return "\n".join(lines)

    def raise_if_findings(self) -> None:
        """Raise :class:`~repro.errors.SanitizerFindingsError` unless clean."""
        if not self.clean:
            raise SanitizerFindingsError(self)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly rendering (the ``lint_kernels --json`` artifact)."""
        return {
            "clean": self.clean,
            "launches_checked": self.launches_checked,
            "modules_linted": self.modules_linted,
            "findings": [
                {
                    "detector": f.detector,
                    "severity": f.severity,
                    "kernel": f.kernel,
                    "message": f.message,
                    "sites": list(f.sites),
                }
                for f in self.findings
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`to_dict` rendering as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
