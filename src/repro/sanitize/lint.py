"""Static AST lint for simulator kernels (``repro.sanitize.lint``).

Kernels are plain Python generator functions, so nothing stops one
from calling ``time.time()``, mutating a captured device array behind
the cost model's back, or yielding a token the scheduler has never
heard of — until it breaks at runtime on some schedule.  This pass
parses kernel modules and enforces the simulator's rules *before* a
kernel ever runs.

What counts as a kernel: any function whose first parameter is named
``ctx`` — generator functions are full kernels (or ``yield from``
helpers), plain functions are warp-level helpers (compaction
primitives, append paths).  Methods (first parameter ``self``) and
host-side functions are ignored.

Rules (detector names in :mod:`repro.sanitize.report`):

* ``illegal-yield`` — a kernel may only ``yield ctx.BARRIER`` /
  ``ctx.STEP`` (or the module-level ``BARRIER`` / ``STEP`` sentinels);
  ``yield from`` must delegate to a helper call.
* ``wall-clock`` — no ``time.*`` / ``datetime.*`` inside a kernel:
  the only clock is the simulated one.
* ``rng`` — no ``random.*`` / ``np.random.*`` inside a kernel;
  ``ctx.should_preempt()`` is the sanctioned nondeterminism hook.
* ``host-mutation`` — no subscript stores into (or augmented
  assignment of) a kernel *parameter*: device arrays are written
  through ``ctx.gstore`` / ``ctx.sstore`` so the cost model and the
  race detector see every store.
* ``unsynced-shared`` — a shared-memory write (``ctx.smem_set`` /
  ``ctx.sstore``) followed on the same straight-line path by a read of
  the same name from a different warp guard, with no ``yield
  ctx.BARRIER`` in between.  Loop bodies are analysed twice so a
  write at the bottom of a loop is checked against the read at its
  top.  Sibling branches of one ``if`` are treated as independent
  (double-buffering patterns write one branch and read the other);
  the dynamic racecheck remains authoritative for those.

Suppression: a line ending in ``# sanitize: ok`` is exempt from lint
findings (use sparingly, and say why in a comment).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.sanitize.astutil import (
    WARP_NAMES as _WARP_NAMES,
    dotted as _dotted,
    is_sentinel_yield as _is_sentinel_yield,
    iter_own_scope as _iter_own_scope,
    yields_barrier as _yields_barrier,
)
from repro.sanitize.report import SanitizerFinding, SanitizerReport

__all__ = [
    "lint_source",
    "lint_file",
    "lint_module",
    "lint_paths",
    "default_kernel_paths",
    "lint_repo",
]

#: ``ctx`` attributes that read / write / atomically update shared memory
_SHARED_READS = ("smem_get", "sload")
_SHARED_WRITES = ("smem_set", "sstore")

#: magic comment that exempts a line from lint findings
_SUPPRESS_MARK = "# sanitize: ok"


@dataclass
class _Kernel:
    node: ast.FunctionDef
    qualname: str
    is_generator: bool
    params: Set[str]  # parameters other than ctx


class _ModuleLinter:
    """Lints one parsed module; collects findings."""

    def __init__(self, tree: ast.Module, filename: str, source: str) -> None:
        self.tree = tree
        self.filename = filename
        self.findings: List[SanitizerFinding] = []
        self._seen: Set[tuple] = set()
        self._suppressed = {
            lineno
            for lineno, line in enumerate(source.splitlines(), start=1)
            if _SUPPRESS_MARK in line
        }

    # -- plumbing ----------------------------------------------------------

    def _emit(
        self,
        detector: str,
        kernel: str,
        message: str,
        lineno: int,
        severity: str = "error",
        extra_sites: Tuple[str, ...] = (),
    ) -> None:
        if lineno in self._suppressed:
            return
        key = (detector, kernel, lineno, message)
        if key in self._seen:
            return
        self._seen.add(key)
        site = f"{Path(self.filename).name}:{lineno}"
        self.findings.append(
            SanitizerFinding(
                detector, severity, kernel, message, (site,) + extra_sites
            )
        )

    # -- kernel discovery --------------------------------------------------

    def kernels(self) -> List[_Kernel]:
        found: List[_Kernel] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            args = node.args.args
            if not args or args[0].arg != "ctx":
                continue
            is_gen = any(
                isinstance(sub, (ast.Yield, ast.YieldFrom))
                for sub in _iter_own_scope(node)
            )
            params = {a.arg for a in args[1:]}
            params.update(a.arg for a in node.args.kwonlyargs)
            module = Path(self.filename).stem
            found.append(_Kernel(node, f"{module}:{node.name}", is_gen, params))
        return found

    # -- rules -------------------------------------------------------------

    def run(self) -> List[SanitizerFinding]:
        for kernel in self.kernels():
            if kernel.is_generator:
                self._check_yields(kernel)
            self._check_clocks_and_rng(kernel)
            self._check_host_mutation(kernel)
            _SharedFlow(self, kernel).run()
        return self.findings

    def _check_yields(self, kernel: _Kernel) -> None:
        for node in _iter_own_scope(kernel.node):
            if isinstance(node, ast.Yield):
                if not _is_sentinel_yield(node.value, "ctx"):
                    shown = (
                        ast.unparse(node.value) if node.value is not None
                        else "<bare yield>"
                    )
                    self._emit(
                        "illegal-yield", kernel.qualname,
                        f"kernels may only yield ctx.BARRIER or ctx.STEP, "
                        f"not {shown!r}",
                        node.lineno,
                    )
            elif isinstance(node, ast.YieldFrom):
                if not isinstance(node.value, ast.Call):
                    self._emit(
                        "illegal-yield", kernel.qualname,
                        "yield from must delegate to a kernel helper call, "
                        f"not {ast.unparse(node.value)!r}",
                        node.lineno,
                    )

    def _check_clocks_and_rng(self, kernel: _Kernel) -> None:
        # only report the outermost attribute of a chain, so
        # ``datetime.datetime.now`` is one finding, not three
        inner = {
            id(node.value)
            for node in _iter_own_scope(kernel.node)
            if isinstance(node, ast.Attribute)
        }
        for node in _iter_own_scope(kernel.node):
            if not isinstance(node, ast.Attribute) or id(node) in inner:
                continue
            dotted = _dotted(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] in ("time", "datetime"):
                self._emit(
                    "wall-clock", kernel.qualname,
                    f"kernel references {dotted} — the only clock inside a "
                    f"kernel is the simulated one (cost model cycles)",
                    node.lineno,
                )
            elif parts[0] == "random" or (
                parts[0] in ("np", "numpy")
                and len(parts) > 1
                and parts[1] == "random"
            ):
                self._emit(
                    "rng", kernel.qualname,
                    f"kernel references {dotted} — kernels must be "
                    f"deterministic; ctx.should_preempt() is the sanctioned "
                    f"schedule-fuzzing hook",
                    node.lineno,
                )

    def _check_host_mutation(self, kernel: _Kernel) -> None:
        def flag(node: ast.AST, name: str) -> None:
            self._emit(
                "host-mutation", kernel.qualname,
                f"kernel mutates captured array {name!r} directly — device "
                f"stores must go through ctx.gstore/ctx.sstore so the cost "
                f"model and race detector see them",
                node.lineno,
            )

        for node in _iter_own_scope(kernel.node):
            targets: Sequence[ast.AST]
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and isinstance(
                    node, ast.AugAssign
                ):
                    if target.id in kernel.params:
                        flag(node, target.id)
                if not isinstance(target, ast.Subscript):
                    continue
                base = target.value
                if (
                    isinstance(base, ast.Attribute)
                    and base.attr == "data"
                    and isinstance(base.value, ast.Name)
                ):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in kernel.params:
                    flag(node, base.id)


class _SharedFlow:
    """Straight-line shared-memory write -> read analysis (see module docs).

    ``pending`` maps a shared location name to ``(guard, lineno)`` of
    the latest un-barriered plain write; a read of that name under a
    *different* warp guard (or with both sides unguarded, i.e. executed
    by every warp) is flagged.  ``yield ctx.BARRIER`` and ``yield
    from`` clear pending writes.
    """

    def __init__(self, linter: _ModuleLinter, kernel: _Kernel) -> None:
        self.linter = linter
        self.kernel = kernel

    def run(self) -> None:
        self._visit(self.kernel.node.body, guard=(), pending={})

    # -- helpers -----------------------------------------------------------

    def _warp_dependent(self, test: ast.AST) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute) and node.attr in _WARP_NAMES:
                return True
            if isinstance(node, ast.Name) and node.id in _WARP_NAMES:
                return True
        return False

    def _shared_key(self, call: ast.Call, attr: str) -> Optional[str]:
        if not call.args:
            return None
        first = call.args[0]
        if attr in ("smem_get", "smem_set"):
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                return f"scalar:{first.value}"
            return None
        base = first
        if isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Name):
            return f"array:{base.id}"
        return None

    def _ctx_calls(self, stmt: ast.stmt) -> List[Tuple[str, ast.Call]]:
        calls: List[Tuple[str, ast.Call]] = []
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "ctx"
            ):
                calls.append((node.func.attr, node))
        return calls

    # -- the walk ----------------------------------------------------------

    def _visit(self, stmts: Sequence[ast.stmt], guard: tuple, pending: dict) -> None:
        for stmt in stmts:
            if _yields_barrier(stmt, "ctx"):
                pending.clear()
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.YieldFrom
            ):
                # delegated sub-kernels carry their own barrier discipline
                pending.clear()
                continue
            if isinstance(stmt, ast.If):
                branch_tag = (
                    ast.dump(stmt.test)
                    if self._warp_dependent(stmt.test) else None
                )
                merged = dict(pending)
                for tag, body in ((("T",), stmt.body), (("F",), stmt.orelse)):
                    branch_guard = (
                        guard + ((branch_tag,) + tag,)
                        if branch_tag is not None else guard
                    )
                    branch_pending = dict(pending)
                    self._visit(body, branch_guard, branch_pending)
                    merged.update(branch_pending)
                pending.clear()
                pending.update(merged)
                continue
            if isinstance(stmt, (ast.While, ast.For)):
                # two passes so bottom-of-loop writes meet top-of-loop reads
                self._visit(stmt.body, guard, pending)
                self._visit(stmt.body, guard, pending)
                self._visit(stmt.orelse, guard, pending)
                continue
            if isinstance(stmt, (ast.With, ast.Try)):
                for body in getattr(stmt, "body", []), getattr(
                    stmt, "finalbody", []
                ):
                    self._visit(body, guard, pending)
                continue
            self._scan_statement(stmt, guard, pending)

    def _scan_statement(self, stmt: ast.stmt, guard: tuple, pending: dict) -> None:
        calls = self._ctx_calls(stmt)
        # reads first: `smem_set("x", smem_get("x"))` reads the old value
        for attr, call in calls:
            if attr not in _SHARED_READS:
                continue
            key = self._shared_key(call, attr)
            if key is None or key not in pending:
                continue
            write_guard, write_line = pending[key]
            if guard == write_guard and guard:
                continue  # same warp-restricted path: one warp, ordered
            self.linter._emit(
                "unsynced-shared", self.kernel.qualname,
                f"shared {key.split(':', 1)[1]!r} is read here but written "
                f"at line {write_line} with no barrier in between — "
                f"cross-warp readers may see stale data",
                call.lineno,
                severity="warning",
                extra_sites=(
                    f"{Path(self.linter.filename).name}:{write_line}",
                ),
            )
        for attr, call in calls:
            if attr in _SHARED_WRITES:
                key = self._shared_key(call, attr)
                if key is not None:
                    pending[key] = (guard, call.lineno)


# -- entry points -----------------------------------------------------------


def lint_source(
    source: str, filename: str = "<string>"
) -> List[SanitizerFinding]:
    """Lint kernel functions found in ``source``."""
    tree = ast.parse(source, filename=filename)
    return _ModuleLinter(tree, filename, source).run()


def lint_file(path: str | Path) -> List[SanitizerFinding]:
    """Lint one Python file."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_module(module) -> List[SanitizerFinding]:
    """Lint an imported module object (e.g. ``repro.core.loop_kernel``)."""
    return lint_file(module.__file__)


def default_kernel_paths(src_root: str | Path | None = None) -> List[Path]:
    """Every kernel module the repository ships: ``core/`` + ``systems/``."""
    if src_root is None:
        src_root = Path(__file__).resolve().parents[1]
    src_root = Path(src_root)
    paths: List[Path] = []
    for package in ("core", "systems"):
        paths.extend(sorted((src_root / package).glob("*.py")))
    return paths


def lint_paths(paths: Iterable[str | Path]) -> SanitizerReport:
    """Lint several files/directories into one report."""
    report = SanitizerReport()
    for entry in paths:
        entry = Path(entry)
        files = sorted(entry.glob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            report.extend(lint_file(file))
            report.modules_linted += 1
    return report


def lint_repo(src_root: str | Path | None = None) -> SanitizerReport:
    """Lint all shipped kernel modules (what ``scripts/lint_kernels.py`` runs)."""
    return lint_paths(default_kernel_paths(src_root))
