"""Dynamic race detection for the SIMT simulator ("racecheck").

A :class:`KernelSanitizer` attaches to a
:class:`~repro.gpusim.device.Device`; for every launch the device
creates one :class:`LaunchMonitor` and hands it to the scheduler, which
threads it into each :class:`~repro.gpusim.context.WarpContext`.  Every
memory access the context performs (``gload``/``gstore``/``sload``/
``sstore``/``smem_get``/``smem_set``/``smem_atomic_add``/
``atomic_global``) is mirrored into shadow access logs keyed by exact
location, with the *barrier epoch* of the accessing warp's block and
the kernel-source ``file:line`` of the access.

Happens-before model (matching the simulator's semantics):

* two accesses by the **same warp** are always ordered;
* accesses from warps of the **same block** are ordered iff a
  ``__syncthreads`` generation separates them (different barrier
  epochs) — within one epoch they are concurrent;
* accesses from **different blocks** are concurrent for the whole
  launch (nothing synchronises blocks before kernel end).

A *race* is a concurrent pair touching the same location where at
least one side is a **plain (non-atomic) write**.  Atomic-vs-atomic is
ordered by the hardware; a plain *read* concurrent with an atomic RMW
is reported as benign (word-sized loads are single transactions on the
device — the property the paper's Fig. 6 degree-restore argument
leans on) and therefore not flagged.

Two structural detectors ride on the same logs:

* **barrier divergence** — warps of one block retire having passed
  different numbers of barrier generations (legal in the simulator,
  which releases barriers over the *remaining* warps, but almost
  always a kernel bug on real hardware);
* **ballot hazard** — a warp executes ``__ballot_sync`` in an epoch in
  which it read shared memory last written by *another* warp with no
  barrier in between: the ballot's predicate may be stale per-lane.

Recording never charges cycles or touches the cost model, so a
sanitized run's ``simulated_ms`` is byte-identical to an unsanitized
one; with no monitor attached every hook is a single ``is not None``
test (the same cold-path discipline as :mod:`repro.obs`).
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.sanitize.report import SanitizerFinding, SanitizerReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.context import WarpContext

__all__ = ["KernelSanitizer", "LaunchMonitor"]

#: source files whose frames are skipped when attributing an access to
#: a kernel-source line (simulator internals and warp-level helpers,
#: not the kernel logic itself)
_INTERNAL_FRAMES = (
    "gpusim/context.py",
    "sanitize/racecheck.py",
    "core/buffers.py",
    "core/compaction.py",
)

#: per-launch cap so a badly racing kernel cannot flood the report
_MAX_FINDINGS_PER_LAUNCH = 64


def _call_site() -> str:
    """``file.py:line`` of the innermost non-simulator frame."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename.replace("\\", "/")
        if not filename.endswith(_INTERNAL_FRAMES):
            break
        frame = frame.f_back
    if frame is None:  # pragma: no cover - defensive
        return "<unknown>"
    filename = frame.f_code.co_filename.replace("\\", "/")
    parts = filename.split("/")
    # shorten to the path from the package (or test) root
    for anchor in ("repro", "tests"):
        if anchor in parts:
            filename = "/".join(parts[parts.index(anchor):])
            break
    else:
        filename = parts[-1]
    return f"{filename}:{frame.f_lineno}"


class _Access:
    """Latest access of one kind by one warp to one location."""

    __slots__ = ("warp", "block", "epoch", "site")

    def __init__(self, warp: int, block: int, epoch: int, site: str) -> None:
        self.warp = warp
        self.block = block
        self.epoch = epoch
        self.site = site


class _Location:
    """Shadow state of one memory word: latest access per warp per kind."""

    __slots__ = ("plain_writes", "reads", "atomics")

    def __init__(self) -> None:
        self.plain_writes: Dict[int, _Access] = {}
        self.reads: Dict[int, _Access] = {}
        self.atomics: Dict[int, _Access] = {}


def _concurrent(a: _Access, b: _Access) -> bool:
    """True when nothing orders accesses of two *different* warps."""
    if a.block != b.block:
        return True  # no cross-block synchronisation inside a launch
    return a.epoch == b.epoch  # same block: barriers order epochs


class LaunchMonitor:
    """Shadow access logs and race analysis for one kernel launch."""

    def __init__(
        self, kernel: str, disabled: frozenset[str] = frozenset()
    ) -> None:
        self.kernel = kernel
        self._disabled = disabled
        self.findings: List[SanitizerFinding] = []
        self._finding_keys: set = set()
        #: (space, location-key) -> shadow state
        self._locations: Dict[tuple, _Location] = {}
        #: global warp id -> barrier generations passed
        self._warp_barriers: Dict[int, int] = {}
        #: block idx -> list of (warp_id, barriers passed) at warp exit
        self._exits: Dict[int, List[Tuple[int, int]]] = {}
        #: global warp id -> (epoch, read site, write site) of the last
        #: unsynchronised shared read (feeds the ballot hazard detector)
        self._taint: Dict[int, Tuple[int, str, str]] = {}

    # -- finding plumbing --------------------------------------------------

    def _emit(
        self,
        detector: str,
        message: str,
        sites: Tuple[str, ...],
        severity: str = "error",
    ) -> None:
        if detector in self._disabled:
            return
        if len(self.findings) >= _MAX_FINDINGS_PER_LAUNCH:
            return
        key = (detector, message, sites)
        if key in self._finding_keys:
            return
        self._finding_keys.add(key)
        self.findings.append(
            SanitizerFinding(detector, severity, self.kernel, message, sites)
        )

    # -- access recording --------------------------------------------------

    def _record(
        self,
        detector: str,
        space: str,
        key: tuple,
        what: str,
        kind: str,
        ctx: "WarpContext",
        site: str,
    ) -> None:
        """Log one access and check it against the shadow state."""
        loc = self._locations.get((space, key))
        if loc is None:
            loc = self._locations[(space, key)] = _Location()
        warp = ctx.global_warp_id
        access = _Access(warp, ctx.block_idx, int(ctx.block.timing.barriers), site)

        if kind == "write":
            # a plain write conflicts with *any* concurrent access of
            # another warp
            for store, verb in (
                (loc.plain_writes, "write"),
                (loc.reads, "read"),
                (loc.atomics, "atomic"),
            ):
                for other in store.values():
                    if other.warp != warp and _concurrent(access, other):
                        self._emit(
                            detector,
                            f"write-{verb} race on {what}: warp {warp} "
                            f"(block {access.block}) plain-writes while warp "
                            f"{other.warp} (block {other.block}) {verb}s it "
                            f"with no barrier between",
                            (site, other.site),
                        )
                        break  # one counterexample per store suffices
            loc.plain_writes[warp] = access
            return

        # reads and atomics only conflict with concurrent plain writes
        for other in loc.plain_writes.values():
            if other.warp != warp and _concurrent(access, other):
                self._emit(
                    detector,
                    f"{kind}-write race on {what}: warp {warp} "
                    f"(block {access.block}) {kind}s while warp {other.warp} "
                    f"(block {other.block}) plain-writes it with no barrier "
                    f"between",
                    (site, other.site),
                )
                if space == "shared" and kind == "read":
                    self._taint[warp] = (access.epoch, site, other.site)
                break
        store = loc.reads if kind == "read" else loc.atomics
        store[warp] = access

    # -- hooks called by WarpContext ---------------------------------------

    def global_access(
        self, ctx: "WarpContext", kind: str, array, idx: np.ndarray
    ) -> None:
        """Record a ``gload``/``gstore``/``atomicAdd`` on global memory."""
        site = _call_site()
        name = getattr(array, "name", "<array>")
        for index in np.unique(np.atleast_1d(idx)):
            self._record(
                "global-race", "global", (name, int(index)),
                f"{name}[{int(index)}]", kind, ctx, site,
            )

    def shared_array_access(
        self, ctx: "WarpContext", kind: str, array: np.ndarray, idx
    ) -> None:
        """Record an ``sload``/``sstore`` on a block shared array."""
        site = _call_site()
        block = ctx.block_idx
        name = next(
            (n for n, a in ctx.block.arrays.items() if a is array), "<shared>"
        )
        for index in np.unique(np.atleast_1d(np.asarray(idx, dtype=np.int64))):
            self._record(
                "shared-race", "shared", (block, id(array), int(index)),
                f"shared {name}[{int(index)}] (block {block})",
                kind, ctx, site,
            )

    def shared_scalar_access(
        self, ctx: "WarpContext", kind: str, name: str
    ) -> None:
        """Record a ``smem_get``/``smem_set``/``smem_atomic_add`` scalar op."""
        self._record(
            "shared-race", "shared", (ctx.block_idx, "scalar", name),
            f"shared scalar {name!r} (block {ctx.block_idx})",
            kind, ctx, _call_site(),
        )

    def on_ballot(self, ctx: "WarpContext") -> None:
        """Flag ``__ballot_sync`` over data from an unsynced shared read."""
        taint = self._taint.get(ctx.global_warp_id)
        if taint is None:
            return
        epoch, read_site, write_site = taint
        if epoch != int(ctx.block.timing.barriers):
            return  # a barrier passed since the racy read: synchronised
        self._emit(
            "ballot-hazard",
            f"warp {ctx.global_warp_id} ballots in the same barrier epoch "
            f"as an unsynchronised shared-memory read — lanes may vote on "
            f"stale data",
            (_call_site(), read_site, write_site),
        )

    # -- hooks called by the scheduler -------------------------------------

    def on_barrier_arrival(self, ctx: "WarpContext") -> None:
        """A warp yielded ``BARRIER``; count its generation."""
        warp = ctx.global_warp_id
        self._warp_barriers[warp] = self._warp_barriers.get(warp, 0) + 1

    def on_warp_exit(self, ctx: "WarpContext") -> None:
        """A warp's generator finished; snapshot its barrier count."""
        self._exits.setdefault(ctx.block_idx, []).append(
            (ctx.warp_id, self._warp_barriers.get(ctx.global_warp_id, 0))
        )

    # -- analysis ----------------------------------------------------------

    def finalize(self) -> List[SanitizerFinding]:
        """Run the end-of-launch detectors and return all findings."""
        for block, exits in sorted(self._exits.items()):
            counts = sorted({count for _, count in exits})
            if len(counts) > 1:
                detail = ", ".join(
                    f"warp {w}: {c}" for w, c in sorted(exits)
                )
                self._emit(
                    "barrier-divergence",
                    f"warps of block {block} retired at different "
                    f"__syncthreads generations ({detail}) — some warps "
                    f"skipped or added barriers",
                    (),
                )
        return self.findings


class KernelSanitizer:
    """Per-device dynamic sanitizer: one monitor per launch, one report.

    Pass ``disable`` to suppress individual detectors (e.g. a kernel
    that deliberately tolerates a benign shared race can run with
    ``KernelSanitizer(disable={"ballot-hazard"})``); see
    ``docs/SANITIZER.md``.
    """

    def __init__(self, disable: Iterable[str] = ()) -> None:
        self.report = SanitizerReport()
        self._disabled = frozenset(disable)

    def begin_launch(self, kernel_name: str) -> LaunchMonitor:
        """Create the shadow-log monitor for one kernel launch."""
        return LaunchMonitor(kernel_name, self._disabled)

    def end_launch(self, monitor: Optional[LaunchMonitor]) -> None:
        """Fold a finished launch's findings into the device report."""
        if monitor is None:
            return
        self.report.extend(monitor.finalize())
        self.report.launches_checked += 1
