"""The ``repro.findings/v1`` machine-readable findings artifact.

Every tool that emits findings — the kernel linter, the dataflow and
admission gates, the CLI's ``--json`` dumps — shares one artifact
shape: the report's :meth:`~repro.sanitize.report.SanitizerReport.
to_dict` rendering wrapped with a schema tag and the emitting tool's
name, so one consumer can ingest them all.  Keeping the schema in the
package (rather than the ``scripts/`` plumbing) lets library callers —
``repro --dataflow --json findings.json`` — emit the same artifact CI
uploads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

__all__ = ["FINDINGS_SCHEMA", "findings_record", "write_findings"]

#: schema tag of the unified findings artifact
FINDINGS_SCHEMA = "repro.findings/v1"


def findings_record(tool: str, report: Any) -> Dict[str, Any]:
    """The ``repro.findings/v1`` record for one tool's report.

    ``report`` is a :class:`~repro.sanitize.report.SanitizerReport` (or
    anything with a compatible ``to_dict``).
    """
    return {
        "schema": FINDINGS_SCHEMA,
        "tool": tool,
        "report": (
            report.to_dict() if hasattr(report, "to_dict") else dict(report)
        ),
    }


def write_findings(
    path: "str | Path", tool: str, report: Any
) -> Dict[str, Any]:
    """Write a ``repro.findings/v1`` artifact; returns the record."""
    record = findings_record(tool, report)
    Path(path).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return record
