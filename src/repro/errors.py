"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Simulated-hardware
failures (device out-of-memory, block-buffer overflow, simulated-time
budget exceeded) are modelled as exceptions because the paper reports them
as experiment outcomes ("OOM", "> 1hr" in Tables III-V).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphFormatError(ReproError):
    """An input edge list or graph file could not be parsed."""


class GraphValidationError(ReproError):
    """A graph object violates a structural invariant (e.g. bad offsets)."""


class UnknownDatasetError(ReproError, KeyError):
    """A dataset name is not present in the dataset registry."""


class UnknownAlgorithmError(ReproError, KeyError):
    """An algorithm name is not present in the algorithm registry."""


class DeviceError(ReproError):
    """Base class for simulated-GPU failures."""


class DeviceSpecError(DeviceError, ValueError):
    """A :class:`~repro.gpusim.spec.DeviceSpec` is statically invalid.

    Raised at construction time (``__post_init__``) — for instance when
    the per-block shared buffers plus the SM/VP/EC staging arrays the
    kernel variants allocate cannot fit ``shared_memory_per_block_bytes``.
    Catching this at spec-build time replaces the late dynamic
    :class:`SharedMemoryExhaustedError` mid-run.  Also derives from
    :class:`ValueError` so callers that treated spec validation errors
    generically keep working.
    """


class DeviceOutOfMemoryError(DeviceError):
    """A ``malloc`` on the simulated device exceeded its global memory.

    Mirrors the "OOM" outcomes of Tables III and V in the paper.
    """

    def __init__(self, requested: int, in_use: int, capacity: int) -> None:
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        super().__init__(
            f"device OOM: requested {requested} B with {in_use} B already "
            f"allocated of {capacity} B capacity"
        )


class InvalidFreeError(DeviceError):
    """A ``free`` on the simulated device named no live allocation.

    ``kind`` is ``"double"`` when the name was allocated and already
    freed (a double free) and ``"unknown"`` when it was never allocated
    at all.  Mirrors the undefined behaviour a real ``cudaFree`` of a
    stale or garbage pointer invokes; the simulator diagnoses it as a
    typed error instead, and the memory tracker
    (:mod:`repro.memtrace`) additionally surfaces it as a
    ``double-free`` sanitizer finding.
    """

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        what = (
            "double free of device array"
            if kind == "double"
            else "free of unknown device array"
        )
        super().__init__(f"invalid free: {what} {name!r}")


class BufferOverflowError(DeviceError):
    """A per-block vertex buffer overflowed its fixed capacity.

    The paper's basic kernel asserts on this condition (Section IV-C);
    the ring-buffer organisation postpones but does not eliminate it.
    """

    def __init__(self, block: int, capacity: int) -> None:
        self.block = block
        self.capacity = capacity
        super().__init__(
            f"buffer of block {block} overflowed its capacity of "
            f"{capacity} vertex slots"
        )


class SharedMemoryExhaustedError(DeviceError, MemoryError):
    """A shared-memory allocation exceeded the block's capacity.

    The paper's SM variant sizes its buffer ``B`` against the 96 KB of
    shared memory a P100 block may use (Section IV-B); asking for more
    is a compile-time failure on the real device and this error on the
    simulator.  Also derives from :class:`MemoryError` so callers that
    treated the old untyped exception keep working.
    """

    def __init__(self, block: int, name: str, requested: int,
                 in_use: int, capacity: int) -> None:
        self.block = block
        self.name = name
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        super().__init__(
            f"block {block}: shared memory exhausted allocating {name!r} "
            f"({requested} B requested, {in_use} B in use of {capacity} B)"
        )


class SimulatedTimeLimitExceeded(ReproError):
    """A program exceeded its simulated-time budget.

    Mirrors the "> 1hr" force-terminations of Tables III and IV.
    """

    def __init__(self, elapsed_ms: float, budget_ms: float) -> None:
        self.elapsed_ms = elapsed_ms
        self.budget_ms = budget_ms
        super().__init__(
            f"simulated time {elapsed_ms:.1f} ms exceeded budget "
            f"{budget_ms:.1f} ms"
        )


class SanitizerFindingsError(ReproError):
    """A sanitized run produced findings and the caller asked to fail.

    Raised by :meth:`repro.sanitize.SanitizerReport.raise_if_findings`;
    carries the report so CI logs show every finding, not just a count.
    """

    def __init__(self, report) -> None:
        self.report = report
        super().__init__(
            f"kernel sanitizer reported {len(report.findings)} finding(s):\n"
            + report.summary()
        )


class KernelDeadlockError(DeviceError):
    """The cooperative scheduler detected a barrier that can never be
    satisfied (e.g. some warps exited while others wait at
    ``__syncthreads``) — the failure mode the paper warns about when
    discussing Line 7/8 ordering of Algorithm 3."""
