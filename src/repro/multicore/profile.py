"""Per-epoch bound-class attribution for the simulated multicore.

The GPU side has a roofline profiler (:mod:`repro.profile`) that labels
every kernel launch compute-, memory- or latency-bound.  This module is
the multicore counterpart: when a :class:`~repro.multicore.machine.
SimulatedMulticore` is built with ``profile=True`` it records one
:class:`EpochProfile` per barrier-delimited epoch, splitting the
straggler thread's charge into its plain-op and atomic components and
classifying the epoch as ``compute``-, ``atomic``- or ``sync``-bound
(ties resolve in that priority order).

The attribution is *reconstructive*, not sampled: ``compute_ns`` and
``atomic_ns`` are the exact straggler terms the machine summed when it
charged the epoch, so ``compute_ns + atomic_ns`` equals the epoch's
charged nanoseconds bit-for-bit, and the epoch interval
``[start_ms, end_ms)`` is read straight off the machine's clock.  The
run-report validator leans on both: epochs must tile
``[0, simulated_ms)`` contiguously and every epoch's end must be
re-derivable from its start and its terms with **no tolerance**.
Profiling is observability-only — it reads the clock and the per-thread
arrays, and never changes what the machine charges.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["EpochProfile", "MulticoreProfile", "SCHEMA_VERSION"]

SCHEMA_VERSION = "repro.cpu-epochs/v1"

#: bound classes in tie-break priority order
BOUND_CLASSES = ("compute", "atomic", "sync")


@dataclass(frozen=True)
class EpochProfile:
    """One barrier-delimited epoch's attribution.

    ``compute_ns``/``atomic_ns`` are the straggler thread's two charge
    terms (``ops * op_ns`` and ``atomics * atomic_ns``); ``sync`` marks
    whether the epoch ended at a barrier and therefore also charged the
    cost model's sync fee.  ``bound`` is the largest of the three terms
    (sync term = ``sync_us * 1000``), ties resolving compute > atomic >
    sync.
    """

    index: int
    start_ms: float
    end_ms: float
    compute_ns: float
    atomic_ns: float
    sync: bool
    straggler: int
    bound: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "compute_ns": self.compute_ns,
            "atomic_ns": self.atomic_ns,
            "sync": self.sync,
            "straggler": self.straggler,
            "bound": self.bound,
        }


@dataclass(frozen=True)
class MulticoreProfile:
    """A run's epoch timeline plus the cost constants needed to check it."""

    algorithm: Optional[str]
    threads: int
    op_ns: float
    atomic_ns: float
    sync_us: float
    elapsed_ms: float
    epochs: Tuple[EpochProfile, ...]

    def bound_histogram(self) -> Dict[str, int]:
        """Epoch counts per bound class (all classes present, maybe 0)."""
        hist = {name: 0 for name in BOUND_CLASSES}
        for epoch in self.epochs:
            hist[epoch.bound] = hist.get(epoch.bound, 0) + 1
        return hist

    def to_json(self) -> Dict[str, Any]:
        """The ``repro.cpu-epochs/v1`` record."""
        return {
            "schema": SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "threads": self.threads,
            "op_ns": self.op_ns,
            "atomic_ns": self.atomic_ns,
            "sync_us": self.sync_us,
            "elapsed_ms": self.elapsed_ms,
            "epochs": [e.to_json() for e in self.epochs],
            "bound_histogram": self.bound_histogram(),
        }

    def write(self, path: str) -> None:
        """Serialise :meth:`to_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1)

    def render(self) -> str:
        """Console table: one row per epoch plus the bound histogram."""
        label = self.algorithm or "multicore run"
        lines = [
            f"Multicore epoch profile: {label} "
            f"({self.threads} thread(s), {len(self.epochs)} epoch(s), "
            f"{self.elapsed_ms:.3f} ms)",
            f"  {'epoch':>5} {'start ms':>10} {'dur ms':>10} "
            f"{'compute ns':>12} {'atomic ns':>11} {'sync':>5} "
            f"{'bound':<8}",
        ]
        for e in self.epochs:
            lines.append(
                f"  {e.index:>5} {e.start_ms:>10.4f} "
                f"{e.end_ms - e.start_ms:>10.4f} "
                f"{e.compute_ns:>12.1f} {e.atomic_ns:>11.1f} "
                f"{'yes' if e.sync else 'no':>5} {e.bound:<8}"
            )
        hist = self.bound_histogram()
        lines.append(
            "  bound classes: "
            + ", ".join(f"{k}={v}" for k, v in hist.items())
        )
        return "\n".join(lines)
