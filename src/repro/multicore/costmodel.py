"""Cost model for the simulated shared-memory multicore.

Stands in for the paper's CPU server (two Xeon E5-2680 v4, 48 threads,
256 GB RAM).  Like the GPU cost model, it maps counted events — simple
operations, atomics, barrier synchronisations — to simulated time, and
its constants encode the findings Table IV turns on: parallel CPU
programs are *far* from 48x speedup because of synchronisation
overhead, atomic contention and load imbalance (the imbalance emerges
from the per-thread op counts themselves).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuCostModel"]


@dataclass(frozen=True)
class CpuCostModel:
    """Constants of the simulated multicore."""

    #: worker threads (the paper's server exposes 48)
    threads: int = 48
    #: nanoseconds per simple compiled operation (array access,
    #: compare, increment)
    op_ns: float = 6.0
    #: extra nanoseconds per atomic read-modify-write
    atomic_ns: float = 18.0
    #: microseconds per barrier synchronisation of the thread pool
    sync_us: float = 2.0
    #: nanoseconds per *interpreted* Python operation — the NetworkX
    #: penalty of Table IV (pure-Python dict/loop machinery)
    python_op_ns: float = 450.0

    def serial_ms(self, ops: float, atomics: float = 0.0) -> float:
        """Single-thread time for a compiled program."""
        return (ops * self.op_ns + atomics * self.atomic_ns) / 1e6

    def python_ms(self, ops: float) -> float:
        """Single-thread time for an interpreted (NetworkX-like) program."""
        return ops * self.python_op_ns / 1e6
