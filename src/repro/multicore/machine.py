"""Deterministic simulated shared-memory multicore.

CPU-parallel baselines (ParK, PKC, MPM) are *executed* sequentially for
determinism, but their work is attributed to simulated threads: each
algorithm tells the machine how many operations each thread performed
between barriers, and the machine charges each epoch the *maximum*
per-thread cost (the straggler) plus a synchronisation fee.  Load
imbalance, atomic contention and sync overhead — the reasons the
paper's CPU programs fall far short of 48x speedup — thus emerge from
the recorded counts rather than from nondeterministic real threading
(which the GIL would distort anyway).
"""

from __future__ import annotations

import numpy as np

from repro.multicore.costmodel import CpuCostModel

__all__ = ["SimulatedMulticore"]


class SimulatedMulticore:
    """Per-thread op accounting with barrier-delimited epochs."""

    def __init__(self, cost: CpuCostModel | None = None, threads: int | None = None):
        self.cost = cost or CpuCostModel()
        self.threads = threads if threads is not None else self.cost.threads
        self._epoch_ops = np.zeros(self.threads, dtype=np.float64)
        self._epoch_atomics = np.zeros(self.threads, dtype=np.float64)
        self.elapsed_ms = 0.0
        self.barriers = 0
        self.total_ops = 0.0
        self.total_atomics = 0.0

    def add_ops(self, thread: int, count: float) -> None:
        """Record ``count`` simple operations performed by ``thread``."""
        self._epoch_ops[thread] += count
        self.total_ops += count

    def add_atomics(self, thread: int, count: float) -> None:
        """Record ``count`` atomic read-modify-writes by ``thread``."""
        self._epoch_atomics[thread] += count
        self.total_atomics += count

    def spread_ops(self, count: float) -> None:
        """Record ``count`` operations divided evenly over all threads
        (for perfectly balanced phases like array initialisation)."""
        self._epoch_ops += count / self.threads
        self.total_ops += count

    def barrier(self) -> None:
        """Close the epoch: charge the straggler thread plus sync fee."""
        epoch_ns = float(
            (self._epoch_ops * self.cost.op_ns
             + self._epoch_atomics * self.cost.atomic_ns).max()
        ) if self.threads else 0.0
        self.elapsed_ms += epoch_ns / 1e6 + self.cost.sync_us / 1e3
        self.barriers += 1
        self._epoch_ops[:] = 0.0
        self._epoch_atomics[:] = 0.0

    def finish(self) -> float:
        """Flush any open epoch (without a sync fee) and return total ms."""
        epoch_ns = float(
            (self._epoch_ops * self.cost.op_ns
             + self._epoch_atomics * self.cost.atomic_ns).max()
        ) if self.threads else 0.0
        self.elapsed_ms += epoch_ns / 1e6
        self._epoch_ops[:] = 0.0
        self._epoch_atomics[:] = 0.0
        return self.elapsed_ms
