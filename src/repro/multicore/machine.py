"""Deterministic simulated shared-memory multicore.

CPU-parallel baselines (ParK, PKC, MPM) are *executed* sequentially for
determinism, but their work is attributed to simulated threads: each
algorithm tells the machine how many operations each thread performed
between barriers, and the machine charges each epoch the *maximum*
per-thread cost (the straggler) plus a synchronisation fee.  Load
imbalance, atomic contention and sync overhead — the reasons the
paper's CPU programs fall far short of 48x speedup — thus emerge from
the recorded counts rather than from nondeterministic real threading
(which the GIL would distort anyway).

Observability
-------------
When a process-wide tracer is active (:func:`repro.obs.start_tracing`)
at construction time, every barrier-delimited epoch becomes an
``epoch`` span on the ``cpu`` track of the shared timeline, annotated
with the straggler's op count and the epoch's atomic count.  The hooks
only *read* the clock; traced and untraced runs charge identical time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.multicore.costmodel import CpuCostModel
from repro.multicore.profile import EpochProfile, MulticoreProfile
from repro.obs import active_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memtrace.tracker import MemoryTracker
    from repro.obs.tracer import Tracer

__all__ = ["SimulatedMulticore"]


class SimulatedMulticore:
    """Per-thread op accounting with barrier-delimited epochs.

    ``profile=True`` additionally records one
    :class:`~repro.multicore.profile.EpochProfile` per closed epoch
    (bound-class attribution); a ``memtracer`` receives the host-array
    allocation lifetimes reported via :meth:`track_alloc` /
    :meth:`track_free`.  Both are observability-only: they read the
    clock and the per-thread arrays without changing any charge.
    """

    def __init__(
        self,
        cost: CpuCostModel | None = None,
        threads: int | None = None,
        tracer: "Tracer | None" = None,
        profile: bool = False,
        memtracer: "MemoryTracker | None" = None,
    ) -> None:
        self.cost = cost or CpuCostModel()
        self.threads = threads if threads is not None else self.cost.threads
        self._epoch_ops = np.zeros(self.threads, dtype=np.float64)
        self._epoch_atomics = np.zeros(self.threads, dtype=np.float64)
        self.elapsed_ms = 0.0
        self.barriers = 0
        self.total_ops = 0.0
        self.total_atomics = 0.0
        self.tracer = tracer if tracer is not None else active_tracer()
        self._profile = bool(profile)
        self.epochs: List[EpochProfile] = []
        self.memtracer = memtracer

    def add_ops(self, thread: int, count: float) -> None:
        """Record ``count`` simple operations performed by ``thread``."""
        self._epoch_ops[thread] += count
        self.total_ops += count

    def add_atomics(self, thread: int, count: float) -> None:
        """Record ``count`` atomic read-modify-writes by ``thread``."""
        self._epoch_atomics[thread] += count
        self.total_atomics += count

    def spread_ops(self, count: float) -> None:
        """Record ``count`` operations divided evenly over all threads
        (for perfectly balanced phases like array initialisation)."""
        self._epoch_ops += count / self.threads
        self.total_ops += count

    def _close_epoch(self, sync: bool) -> None:
        epoch_ns = float(
            (self._epoch_ops * self.cost.op_ns
             + self._epoch_atomics * self.cost.atomic_ns).max()
        ) if self.threads else 0.0
        tr = self.tracer
        if tr is not None and (epoch_ns or sync):
            start_ms = self.elapsed_ms
            dur_ms = epoch_ns / 1e6 + (self.cost.sync_us / 1e3 if sync else 0)
            tr.span(
                "epoch", start_ms, dur_ms, cat="cpu", track="cpu",
                args={
                    "straggler_ops": float(self._epoch_ops.max())
                    if self.threads else 0.0,
                    "atomics": float(self._epoch_atomics.sum()),
                    "threads": self.threads,
                },
            )
        start_ms = self.elapsed_ms
        self.elapsed_ms += epoch_ns / 1e6
        if sync:
            self.elapsed_ms += self.cost.sync_us / 1e3
        if self._profile and (epoch_ns or sync):
            self._record_epoch(start_ms, self.elapsed_ms, sync)
        self._epoch_ops[:] = 0.0
        self._epoch_atomics[:] = 0.0

    def _record_epoch(self, start_ms: float, end_ms: float,
                      sync: bool) -> None:
        """Attribute the just-charged epoch (arrays not yet zeroed).

        The straggler's two terms are recomputed with the same float64
        operations that produced the charge, so ``compute_ns +
        atomic_ns`` reproduces the charged nanoseconds bit-for-bit —
        the run-report validator asserts exactly that.
        """
        if self.threads:
            combined = (self._epoch_ops * self.cost.op_ns
                        + self._epoch_atomics * self.cost.atomic_ns)
            straggler = int(combined.argmax())
            compute_ns = float(
                self._epoch_ops[straggler] * self.cost.op_ns
            )
            atomic_ns = float(
                self._epoch_atomics[straggler] * self.cost.atomic_ns
            )
        else:
            straggler, compute_ns, atomic_ns = 0, 0.0, 0.0
        sync_ns = self.cost.sync_us * 1000.0 if sync else 0.0
        terms = (
            ("compute", compute_ns), ("atomic", atomic_ns),
            ("sync", sync_ns),
        )
        bound = max(terms, key=lambda kv: kv[1])[0]
        self.epochs.append(EpochProfile(
            index=len(self.epochs),
            start_ms=start_ms,
            end_ms=end_ms,
            compute_ns=compute_ns,
            atomic_ns=atomic_ns,
            sync=sync,
            straggler=straggler,
            bound=bound,
        ))

    # -- host-array memory telemetry -----------------------------------------

    def track_alloc(self, name: str, nbytes: int) -> None:
        """Open an allocation lifetime on the attached memtracer."""
        mt = self.memtracer
        if mt is not None:
            mt.on_malloc(name, int(nbytes), self.elapsed_ms)

    def track_free(self, name: str) -> None:
        """Close an allocation lifetime on the attached memtracer."""
        mt = self.memtracer
        if mt is not None:
            mt.on_free(name, self.elapsed_ms)

    def barrier(self) -> None:
        """Close the epoch: charge the straggler thread plus sync fee."""
        self._close_epoch(sync=True)
        self.barriers += 1

    def finish(self) -> float:
        """Flush any open epoch (without a sync fee) and return total ms."""
        self._close_epoch(sync=False)
        tr = self.tracer
        if tr is not None:
            tr.add("cpu.barriers", self.barriers)
            tr.add("cpu.ops", self.total_ops)
            tr.add("cpu.atomics", self.total_atomics)
        if self.memtracer is not None:
            self.memtracer.finish(self.elapsed_ms)
        return self.elapsed_ms

    def profile_report(
        self, algorithm: Optional[str] = None
    ) -> MulticoreProfile:
        """The recorded epochs as a :class:`MulticoreProfile`."""
        return MulticoreProfile(
            algorithm=algorithm,
            threads=self.threads,
            op_ns=self.cost.op_ns,
            atomic_ns=self.cost.atomic_ns,
            sync_us=self.cost.sync_us,
            elapsed_ms=self.elapsed_ms,
            epochs=tuple(self.epochs),
        )

    def counters(self) -> Dict[str, float]:
        """Flat observability counters for this machine (``cpu.*``)."""
        return {
            "cpu.threads": float(self.threads),
            "cpu.barriers": float(self.barriers),
            "cpu.ops": float(self.total_ops),
            "cpu.atomics": float(self.total_atomics),
        }
