"""Deterministic simulated shared-memory multicore.

CPU-parallel baselines (ParK, PKC, MPM) are *executed* sequentially for
determinism, but their work is attributed to simulated threads: each
algorithm tells the machine how many operations each thread performed
between barriers, and the machine charges each epoch the *maximum*
per-thread cost (the straggler) plus a synchronisation fee.  Load
imbalance, atomic contention and sync overhead — the reasons the
paper's CPU programs fall far short of 48x speedup — thus emerge from
the recorded counts rather than from nondeterministic real threading
(which the GIL would distort anyway).

Observability
-------------
When a process-wide tracer is active (:func:`repro.obs.start_tracing`)
at construction time, every barrier-delimited epoch becomes an
``epoch`` span on the ``cpu`` track of the shared timeline, annotated
with the straggler's op count and the epoch's atomic count.  The hooks
only *read* the clock; traced and untraced runs charge identical time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.multicore.costmodel import CpuCostModel
from repro.obs import active_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer

__all__ = ["SimulatedMulticore"]


class SimulatedMulticore:
    """Per-thread op accounting with barrier-delimited epochs."""

    def __init__(
        self,
        cost: CpuCostModel | None = None,
        threads: int | None = None,
        tracer: "Tracer | None" = None,
    ):
        self.cost = cost or CpuCostModel()
        self.threads = threads if threads is not None else self.cost.threads
        self._epoch_ops = np.zeros(self.threads, dtype=np.float64)
        self._epoch_atomics = np.zeros(self.threads, dtype=np.float64)
        self.elapsed_ms = 0.0
        self.barriers = 0
        self.total_ops = 0.0
        self.total_atomics = 0.0
        self.tracer = tracer if tracer is not None else active_tracer()

    def add_ops(self, thread: int, count: float) -> None:
        """Record ``count`` simple operations performed by ``thread``."""
        self._epoch_ops[thread] += count
        self.total_ops += count

    def add_atomics(self, thread: int, count: float) -> None:
        """Record ``count`` atomic read-modify-writes by ``thread``."""
        self._epoch_atomics[thread] += count
        self.total_atomics += count

    def spread_ops(self, count: float) -> None:
        """Record ``count`` operations divided evenly over all threads
        (for perfectly balanced phases like array initialisation)."""
        self._epoch_ops += count / self.threads
        self.total_ops += count

    def _close_epoch(self, sync: bool) -> None:
        epoch_ns = float(
            (self._epoch_ops * self.cost.op_ns
             + self._epoch_atomics * self.cost.atomic_ns).max()
        ) if self.threads else 0.0
        tr = self.tracer
        if tr is not None and (epoch_ns or sync):
            start_ms = self.elapsed_ms
            dur_ms = epoch_ns / 1e6 + (self.cost.sync_us / 1e3 if sync else 0)
            tr.span(
                "epoch", start_ms, dur_ms, cat="cpu", track="cpu",
                args={
                    "straggler_ops": float(self._epoch_ops.max())
                    if self.threads else 0.0,
                    "atomics": float(self._epoch_atomics.sum()),
                    "threads": self.threads,
                },
            )
        self.elapsed_ms += epoch_ns / 1e6
        if sync:
            self.elapsed_ms += self.cost.sync_us / 1e3
        self._epoch_ops[:] = 0.0
        self._epoch_atomics[:] = 0.0

    def barrier(self) -> None:
        """Close the epoch: charge the straggler thread plus sync fee."""
        self._close_epoch(sync=True)
        self.barriers += 1

    def finish(self) -> float:
        """Flush any open epoch (without a sync fee) and return total ms."""
        self._close_epoch(sync=False)
        tr = self.tracer
        if tr is not None:
            tr.add("cpu.barriers", self.barriers)
            tr.add("cpu.ops", self.total_ops)
            tr.add("cpu.atomics", self.total_atomics)
        return self.elapsed_ms

    def counters(self) -> dict:
        """Flat observability counters for this machine (``cpu.*``)."""
        return {
            "cpu.threads": float(self.threads),
            "cpu.barriers": float(self.barriers),
            "cpu.ops": float(self.total_ops),
            "cpu.atomics": float(self.total_atomics),
        }
