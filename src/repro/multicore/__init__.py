"""Simulated shared-memory multicore for the CPU-parallel baselines."""

from repro.multicore.costmodel import CpuCostModel
from repro.multicore.machine import SimulatedMulticore
from repro.multicore.profile import (
    BOUND_CLASSES,
    EpochProfile,
    MulticoreProfile,
)

__all__ = [
    "BOUND_CLASSES",
    "CpuCostModel",
    "EpochProfile",
    "MulticoreProfile",
    "SimulatedMulticore",
]
