"""Simulated shared-memory multicore for the CPU-parallel baselines."""

from repro.multicore.costmodel import CpuCostModel
from repro.multicore.machine import SimulatedMulticore

__all__ = ["CpuCostModel", "SimulatedMulticore"]
