"""Paper-style table rendering.

Each bench regenerates one table of the paper; these helpers format
the rows identically across benches and persist them under
``benchmarks/results/`` so the tee'd bench output and the saved
artefacts agree.  :func:`write_json` persists the same rows as a
machine-readable ``repro.bench/v1`` record (see
:mod:`repro.bench.schema`) next to the text artefact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, List, Mapping, Sequence

from repro.bench.schema import build_record

__all__ = ["render_table", "write_table", "write_json", "results_dir"]


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[str]],
    highlight_min: bool = False,
) -> str:
    """Fixed-width table with the dataset name as the first column.

    With ``highlight_min`` the smallest parseable numeric cell of each
    row gets the paper's asterisk.
    """
    rows = [list(map(str, row)) for row in rows]
    if highlight_min:
        for row in rows:
            best_idx, best_val = None, None
            for i, cell in enumerate(row[1:], start=1):
                try:
                    value = float(cell.split("±")[0])
                except ValueError:
                    continue
                if best_val is None or value < best_val:
                    best_idx, best_val = i, value
            if best_idx is not None:
                row[best_idx] += "*"
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        first = cells[0].ljust(widths[0])
        rest = "  ".join(c.rjust(w) for c, w in zip(cells[1:], widths[1:]))
        return f"{first}  {rest}".rstrip()

    lines = [title, "=" * len(title), fmt(columns),
             fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def results_dir() -> Path:
    """The directory bench artefacts are written to."""
    path = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_table(name: str, text: str) -> Path:
    """Persist a rendered table and echo it to stdout."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


def write_json(
    name: str,
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    qualitative: Mapping[str, Any] | None = None,
    attribution: Mapping[str, Any] | None = None,
) -> Path:
    """Persist the same table as a ``repro.bench/v1`` JSON record.

    ``columns``/``rows`` are exactly the arguments handed to
    :func:`render_table`; call both writers with the same values and
    the ``.txt`` and ``.json`` artefacts cannot drift apart.
    ``attribution`` is the optional per-allocation memory breakdown
    (see :func:`repro.bench.schema.build_record`).
    """
    record = build_record(
        name, title, columns, rows, qualitative, attribution=attribution
    )
    path = results_dir() / f"{name}.json"
    path.write_text(json.dumps(record, indent=1) + "\n")
    print(f"[saved to {path}]")
    return path
