"""Paper-style table rendering.

Each bench regenerates one table of the paper; these helpers format
the rows identically across benches and persist them under
``benchmarks/results/`` so the tee'd bench output and the saved
artefacts agree.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence

__all__ = ["render_table", "write_table", "results_dir"]


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[str]],
    highlight_min: bool = False,
) -> str:
    """Fixed-width table with the dataset name as the first column.

    With ``highlight_min`` the smallest parseable numeric cell of each
    row gets the paper's asterisk.
    """
    rows = [list(map(str, row)) for row in rows]
    if highlight_min:
        for row in rows:
            best_idx, best_val = None, None
            for i, cell in enumerate(row[1:], start=1):
                try:
                    value = float(cell.split("±")[0])
                except ValueError:
                    continue
                if best_val is None or value < best_val:
                    best_idx, best_val = i, value
            if best_idx is not None:
                row[best_idx] += "*"
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        first = cells[0].ljust(widths[0])
        rest = "  ".join(c.rjust(w) for c, w in zip(cells[1:], widths[1:]))
        return f"{first}  {rest}".rstrip()

    lines = [title, "=" * len(title), fmt(columns),
             fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def results_dir() -> Path:
    """The directory bench artefacts are written to."""
    path = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_table(name: str, text: str) -> Path:
    """Persist a rendered table and echo it to stdout."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path
