"""Machine-readable bench results: the ``repro.bench/v1`` record.

Every table bench persists, next to its fixed-width ``.txt`` artefact,
a JSON file with the same rows in a stable schema so downstream tools
(regression dashboards, the paper-comparison notebook) never have to
parse the pretty-printed text:

.. code-block:: json

    {
      "schema": "repro.bench/v1",
      "name": "table3_gpu",
      "title": "Table III: computation time of GPU programs ...",
      "columns": ["dataset", "gpu-ours", "vetga", ...],
      "rows": [{"dataset": "web-Google", "cells": ["12.4", "318.0", ...]}],
      "qualitative": {"ours_always_wins": true}
    }

``cells`` are kept as the rendered strings (they carry non-numeric
outcomes such as ``"OOM"`` and ``"> 1hr"`` exactly as the paper prints
them); ``qualitative`` is a free-form dict of booleans/numbers that a
bench uses to record the shape claims its assertions checked.

:func:`validate_record` returns a list of problems (empty = valid);
``scripts/check_bench_json.py`` and the tier-1 test
``tests/test_bench_json.py`` are thin wrappers around it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "SIBLING_SCHEMAS",
    "build_record",
    "validate_record",
    "validate_file",
    "validate_results_dir",
]

SCHEMA_VERSION = "repro.bench/v1"

#: the three speed-of-light bound classes a profile baseline may pin
_BOUND_CLASSES = ("compute", "memory", "latency")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_profile_baseline(record: Dict[str, Any]) -> List[str]:
    """Structural check of a ``repro.profile-baseline/v1`` record.

    The deep arithmetic checks live with the profiler
    (:mod:`repro.profile.report`); here we only keep the committed
    baseline well-formed enough for ``check_perf_regression.py``.
    """
    errors: List[str] = []
    if not isinstance(record.get("dataset"), str) or not record["dataset"]:
        errors.append("dataset must be a non-empty string")
    tolerance = record.get("tolerance")
    if not _is_number(tolerance) or not (0.0 < float(tolerance) <= 1.0):
        errors.append(f"tolerance must be a number in (0, 1], got {tolerance!r}")
    variants = record.get("variants")
    if not isinstance(variants, dict) or not variants:
        return errors + ["variants must be a non-empty object"]
    for name, pinned in variants.items():
        if not isinstance(pinned, dict):
            errors.append(f"variants[{name}] must be an object")
            continue
        if not _is_number(pinned.get("cycles")) or pinned["cycles"] <= 0:
            errors.append(f"variants[{name}].cycles must be a positive number")
        bounds = pinned.get("bounds")
        if not isinstance(bounds, dict):
            errors.append(f"variants[{name}].bounds must be an object")
            continue
        for kernel, bound in bounds.items():
            if bound not in _BOUND_CLASSES:
                errors.append(
                    f"variants[{name}].bounds[{kernel}] must be one of "
                    f"{_BOUND_CLASSES}, got {bound!r}"
                )
    return errors


def _validate_trajectory(record: Dict[str, Any]) -> List[str]:
    """Structural check of a ``repro.bench-trajectory/v1`` record.

    An entry carries ``cycles`` (the perf gate's per-variant kernel
    cycles), ``peaks`` (the memory gate's per-program peak bytes),
    ``engine_speedup`` (a dated host wall-clock comparison of the
    execution engines, see ``docs/SIMULATOR.md``), ``runreport`` (the
    run-report gate's per-algorithm summary, see
    ``scripts/check_runreport.py``), ``critpath`` (the critical-path
    gate's per-program speedup ceilings and multi-GPU round
    attribution, see ``scripts/check_critpath.py``), or any
    combination — at least one must be present.
    """
    errors: List[str] = []
    entries = record.get("records")
    if not isinstance(entries, list):
        return ["records must be a list"]
    payload_keys = (
        "cycles", "peaks", "engine_speedup", "runreport", "critpath",
    )
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            errors.append(f"records[{i}] must be an object")
            continue
        for key in ("date", "dataset"):
            if not isinstance(entry.get(key), str) or not entry.get(key):
                errors.append(f"records[{i}].{key} must be a non-empty string")
        if not any(key in entry for key in payload_keys):
            errors.append(
                f"records[{i}] needs a payload: one of "
                f"{', '.join(payload_keys)}"
            )
        for key in ("cycles", "peaks"):
            if key not in entry:
                continue
            values = entry[key]
            if not isinstance(values, dict) or not all(
                _is_number(v) for v in values.values()
            ):
                errors.append(
                    f"records[{i}].{key} must map programs to numbers"
                )
        if "engine_speedup" in entry:
            es = entry["engine_speedup"]
            if not isinstance(es, dict):
                errors.append(
                    f"records[{i}].engine_speedup must be an object"
                )
            else:
                speedup = es.get("speedup")
                if not isinstance(speedup, dict) or not speedup or not all(
                    _is_number(v) for v in speedup.values()
                ):
                    errors.append(
                        f"records[{i}].engine_speedup.speedup must map "
                        f"variants to numbers"
                    )
                if not _is_number(es.get("geomean")):
                    errors.append(
                        f"records[{i}].engine_speedup.geomean must be "
                        f"a number"
                    )
                for side in ("reference_ms", "vectorized_ms"):
                    if side in es and (
                        not isinstance(es[side], dict) or not all(
                            _is_number(v) for v in es[side].values()
                        )
                    ):
                        errors.append(
                            f"records[{i}].engine_speedup.{side} must "
                            f"map variants to numbers"
                        )
        if "runreport" in entry:
            rr = entry["runreport"]
            if not isinstance(rr, dict):
                errors.append(f"records[{i}].runreport must be an object")
            else:
                sections = rr.get("sections")
                if not isinstance(sections, dict) or not sections or not all(
                    isinstance(s, dict)
                    and _is_number(s.get("simulated_ms"))
                    and _is_number(s.get("peak_memory_bytes"))
                    for s in sections.values()
                ):
                    errors.append(
                        f"records[{i}].runreport.sections must map "
                        f"algorithms to objects with numeric "
                        f"simulated_ms and peak_memory_bytes"
                    )
                if not _is_number(rr.get("invariants_checked")):
                    errors.append(
                        f"records[{i}].runreport.invariants_checked "
                        f"must be a number"
                    )
        if "critpath" in entry:
            cp = entry["critpath"]
            if not isinstance(cp, dict):
                errors.append(f"records[{i}].critpath must be an object")
            else:
                programs = cp.get("programs")
                if not isinstance(programs, dict) or not programs or not all(
                    isinstance(p, dict)
                    and isinstance(p.get("best_scenario"), str)
                    and _is_number(p.get("best_ceiling"))
                    for p in programs.values()
                ):
                    errors.append(
                        f"records[{i}].critpath.programs must map "
                        f"programs to objects with a best_scenario "
                        f"string and a numeric best_ceiling"
                    )
                bounds = cp.get("round_bounds", {})
                if not isinstance(bounds, dict) or not all(
                    isinstance(hist, dict) and all(
                        _is_number(v) for v in hist.values()
                    )
                    for hist in bounds.values()
                ):
                    errors.append(
                        f"records[{i}].critpath.round_bounds must map "
                        f"programs to bound-class histograms"
                    )
                if not _is_number(cp.get("invariants_checked")):
                    errors.append(
                        f"records[{i}].critpath.invariants_checked "
                        f"must be a number"
                    )
        if not isinstance(entry.get("ok"), bool):
            errors.append(f"records[{i}].ok must be a boolean")
    return errors


def _validate_memory_baseline(record: Dict[str, Any]) -> List[str]:
    """Structural check of a ``repro.memory-baseline/v1`` record.

    Pins the exact peak bytes of every kernel variant and system
    emulation on one dataset, plus Table V's ordering claims; consumed
    by ``scripts/check_memory_regression.py``.
    """
    errors: List[str] = []
    if not isinstance(record.get("dataset"), str) or not record["dataset"]:
        errors.append("dataset must be a non-empty string")
    for group in ("variants", "systems"):
        peaks = record.get(group)
        if not isinstance(peaks, dict) or not peaks:
            errors.append(f"{group} must be a non-empty object")
            continue
        for name, value in peaks.items():
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                errors.append(
                    f"{group}[{name}] must be a positive integer "
                    f"(exact peak bytes), got {value!r}"
                )
    ordering = record.get("ordering")
    if not isinstance(ordering, dict):
        errors.append("ordering must be an object")
    else:
        variants = record.get("variants")
        known = set(variants) if isinstance(variants, dict) else None
        for key in ("minimal_tie", "above"):
            names = ordering.get(key)
            if not isinstance(names, list) or not names or not all(
                isinstance(n, str) for n in names
            ):
                errors.append(
                    f"ordering.{key} must be a non-empty list of strings"
                )
            elif known is not None:
                for n in names:
                    if n not in known:
                        errors.append(
                            f"ordering.{key} names unknown variant {n!r}"
                        )
    oom = record.get("oom")
    if oom is not None:
        if not isinstance(oom, dict):
            errors.append("oom must be an object when present")
        else:
            if not isinstance(oom.get("dataset"), str) or not oom["dataset"]:
                errors.append("oom.dataset must be a non-empty string")
            systems = oom.get("systems")
            if not isinstance(systems, list) or not systems or not all(
                isinstance(s, str) for s in systems
            ):
                errors.append("oom.systems must be a non-empty list of strings")
    return errors


#: non-table records that may live next to the bench tables under
#: ``benchmarks/results/``, with their structural validators
SIBLING_SCHEMAS = {
    "repro.profile-baseline/v1": _validate_profile_baseline,
    "repro.bench-trajectory/v1": _validate_trajectory,
    "repro.memory-baseline/v1": _validate_memory_baseline,
}


def build_record(
    name: str,
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    qualitative: Mapping[str, Any] | None = None,
    attribution: Mapping[str, Any] | None = None,
) -> Dict[str, Any]:
    """Assemble a schema-conforming record from ``render_table`` inputs.

    ``rows`` are the same row lists handed to
    :func:`repro.bench.tables.render_table`: first element the dataset
    name, the rest the cell values (stringified here).

    ``attribution`` is the optional per-allocation memory breakdown a
    memory bench records behind its cells:
    ``{dataset: {algorithm: {"peak_bytes": int, "arrays": {name: bytes}}}}``
    where the arrays (including the ``"(context)"`` base) sum exactly
    to ``peak_bytes`` — :func:`validate_record` enforces the identity.
    """
    record = {
        "schema": SCHEMA_VERSION,
        "name": str(name),
        "title": str(title),
        "columns": [str(c) for c in columns],
        "rows": [
            {"dataset": str(row[0]), "cells": [str(c) for c in row[1:]]}
            for row in rows
        ],
        "qualitative": dict(qualitative) if qualitative else {},
    }
    if attribution is not None:
        record["attribution"] = {
            dataset: {algo: dict(entry) for algo, entry in per_algo.items()}
            for dataset, per_algo in attribution.items()
        }
    return record


def validate_record(record: Any) -> List[str]:
    """Check a parsed record against ``repro.bench/v1``; return problems."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    if record.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema must be {SCHEMA_VERSION!r}, got {record.get('schema')!r}"
        )
    for key in ("name", "title"):
        if not isinstance(record.get(key), str) or not record.get(key):
            errors.append(f"{key} must be a non-empty string")
    columns = record.get("columns")
    if (
        not isinstance(columns, list)
        or not columns
        or not all(isinstance(c, str) for c in columns)
    ):
        errors.append("columns must be a non-empty list of strings")
        columns = None
    rows = record.get("rows")
    if not isinstance(rows, list):
        errors.append("rows must be a list")
        rows = []
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"rows[{i}] must be an object")
            continue
        if not isinstance(row.get("dataset"), str) or not row.get("dataset"):
            errors.append(f"rows[{i}].dataset must be a non-empty string")
        cells = row.get("cells")
        if not isinstance(cells, list) or not all(
            isinstance(c, str) for c in cells
        ):
            errors.append(f"rows[{i}].cells must be a list of strings")
        elif columns is not None and len(cells) != len(columns) - 1:
            errors.append(
                f"rows[{i}] has {len(cells)} cells for "
                f"{len(columns) - 1} value columns"
            )
    if "qualitative" in record and not isinstance(
        record["qualitative"], dict
    ):
        errors.append("qualitative must be an object when present")
    if "attribution" in record:
        errors.extend(
            _validate_attribution(record["attribution"], columns, rows)
        )
    return errors


def _validate_attribution(
    attribution: Any, columns: Any, rows: List[Any]
) -> List[str]:
    """Check a bench record's memory-attribution block.

    The headline invariant: every entry's arrays sum *exactly* (integer
    equality, no tolerance) to its ``peak_bytes`` — an attribution that
    does not add up is worse than none.
    """
    errors: List[str] = []
    if not isinstance(attribution, dict):
        return ["attribution must be an object when present"]
    datasets = {
        row.get("dataset")
        for row in rows
        if isinstance(row, dict) and isinstance(row.get("dataset"), str)
    }
    algorithms = set(columns[1:]) if isinstance(columns, list) else None
    for dataset, per_algo in attribution.items():
        if datasets and dataset not in datasets:
            errors.append(
                f"attribution[{dataset}] does not match any row dataset"
            )
        if not isinstance(per_algo, dict) or not per_algo:
            errors.append(f"attribution[{dataset}] must be a non-empty object")
            continue
        for algo, entry in per_algo.items():
            where = f"attribution[{dataset}][{algo}]"
            if algorithms is not None and algo not in algorithms:
                errors.append(f"{where} does not match any value column")
            if not isinstance(entry, dict):
                errors.append(f"{where} must be an object")
                continue
            peak = entry.get("peak_bytes")
            if not isinstance(peak, int) or isinstance(peak, bool) or peak < 0:
                errors.append(f"{where}.peak_bytes must be a non-negative int")
                continue
            arrays = entry.get("arrays")
            if not isinstance(arrays, dict) or not arrays or not all(
                isinstance(v, int) and not isinstance(v, bool) and v >= 0
                for v in arrays.values()
            ):
                errors.append(
                    f"{where}.arrays must map names to non-negative ints"
                )
                continue
            total = sum(arrays.values())
            if total != peak:
                errors.append(
                    f"{where}: arrays sum to {total}, not peak_bytes {peak}"
                )
    return errors


def validate_file(path: str | Path) -> List[str]:
    """Validate one ``.json`` artefact; parse errors become problems."""
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    if isinstance(record, dict) and record.get("schema") in SIBLING_SCHEMAS:
        sibling = SIBLING_SCHEMAS[record["schema"]]
        return [f"{path.name}: {p}" for p in sibling(record)]
    problems = validate_record(record)
    if isinstance(record, dict) and record.get("name"):
        expected = f"{record['name']}.json"
        if path.name != expected:
            problems.append(
                f"file name {path.name!r} does not match record "
                f"name ({expected!r})"
            )
    return [f"{path.name}: {p}" for p in problems]


def validate_results_dir(directory: str | Path) -> List[str]:
    """Validate every ``*.json`` under a results directory.

    Also flags a ``.txt`` table that has no ``.json`` sibling, so a
    bench that forgot the JSON writer fails the tier-1 check.
    """
    directory = Path(directory)
    problems: List[str] = []
    for path in sorted(directory.glob("*.json")):
        problems.extend(validate_file(path))
    for txt in sorted(directory.glob("*.txt")):
        if not txt.with_suffix(".json").exists():
            problems.append(f"{txt.name}: missing JSON sibling")
    return problems
