"""Machine-readable bench results: the ``repro.bench/v1`` record.

Every table bench persists, next to its fixed-width ``.txt`` artefact,
a JSON file with the same rows in a stable schema so downstream tools
(regression dashboards, the paper-comparison notebook) never have to
parse the pretty-printed text:

.. code-block:: json

    {
      "schema": "repro.bench/v1",
      "name": "table3_gpu",
      "title": "Table III: computation time of GPU programs ...",
      "columns": ["dataset", "gpu-ours", "vetga", ...],
      "rows": [{"dataset": "web-Google", "cells": ["12.4", "318.0", ...]}],
      "qualitative": {"ours_always_wins": true}
    }

``cells`` are kept as the rendered strings (they carry non-numeric
outcomes such as ``"OOM"`` and ``"> 1hr"`` exactly as the paper prints
them); ``qualitative`` is a free-form dict of booleans/numbers that a
bench uses to record the shape claims its assertions checked.

:func:`validate_record` returns a list of problems (empty = valid);
``scripts/check_bench_json.py`` and the tier-1 test
``tests/test_bench_json.py`` are thin wrappers around it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "SIBLING_SCHEMAS",
    "build_record",
    "validate_record",
    "validate_file",
    "validate_results_dir",
]

SCHEMA_VERSION = "repro.bench/v1"

#: the three speed-of-light bound classes a profile baseline may pin
_BOUND_CLASSES = ("compute", "memory", "latency")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_profile_baseline(record: Dict[str, Any]) -> List[str]:
    """Structural check of a ``repro.profile-baseline/v1`` record.

    The deep arithmetic checks live with the profiler
    (:mod:`repro.profile.report`); here we only keep the committed
    baseline well-formed enough for ``check_perf_regression.py``.
    """
    errors: List[str] = []
    if not isinstance(record.get("dataset"), str) or not record["dataset"]:
        errors.append("dataset must be a non-empty string")
    tolerance = record.get("tolerance")
    if not _is_number(tolerance) or not (0.0 < float(tolerance) <= 1.0):
        errors.append(f"tolerance must be a number in (0, 1], got {tolerance!r}")
    variants = record.get("variants")
    if not isinstance(variants, dict) or not variants:
        return errors + ["variants must be a non-empty object"]
    for name, pinned in variants.items():
        if not isinstance(pinned, dict):
            errors.append(f"variants[{name}] must be an object")
            continue
        if not _is_number(pinned.get("cycles")) or pinned["cycles"] <= 0:
            errors.append(f"variants[{name}].cycles must be a positive number")
        bounds = pinned.get("bounds")
        if not isinstance(bounds, dict):
            errors.append(f"variants[{name}].bounds must be an object")
            continue
        for kernel, bound in bounds.items():
            if bound not in _BOUND_CLASSES:
                errors.append(
                    f"variants[{name}].bounds[{kernel}] must be one of "
                    f"{_BOUND_CLASSES}, got {bound!r}"
                )
    return errors


def _validate_trajectory(record: Dict[str, Any]) -> List[str]:
    """Structural check of a ``repro.bench-trajectory/v1`` record."""
    errors: List[str] = []
    entries = record.get("records")
    if not isinstance(entries, list):
        return ["records must be a list"]
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            errors.append(f"records[{i}] must be an object")
            continue
        for key in ("date", "dataset"):
            if not isinstance(entry.get(key), str) or not entry.get(key):
                errors.append(f"records[{i}].{key} must be a non-empty string")
        cycles = entry.get("cycles")
        if not isinstance(cycles, dict) or not all(
            _is_number(v) for v in cycles.values()
        ):
            errors.append(f"records[{i}].cycles must map variants to numbers")
        if not isinstance(entry.get("ok"), bool):
            errors.append(f"records[{i}].ok must be a boolean")
    return errors


#: non-table records that may live next to the bench tables under
#: ``benchmarks/results/``, with their structural validators
SIBLING_SCHEMAS = {
    "repro.profile-baseline/v1": _validate_profile_baseline,
    "repro.bench-trajectory/v1": _validate_trajectory,
}


def build_record(
    name: str,
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    qualitative: Mapping[str, Any] | None = None,
) -> Dict[str, Any]:
    """Assemble a schema-conforming record from ``render_table`` inputs.

    ``rows`` are the same row lists handed to
    :func:`repro.bench.tables.render_table`: first element the dataset
    name, the rest the cell values (stringified here).
    """
    return {
        "schema": SCHEMA_VERSION,
        "name": str(name),
        "title": str(title),
        "columns": [str(c) for c in columns],
        "rows": [
            {"dataset": str(row[0]), "cells": [str(c) for c in row[1:]]}
            for row in rows
        ],
        "qualitative": dict(qualitative) if qualitative else {},
    }


def validate_record(record: Any) -> List[str]:
    """Check a parsed record against ``repro.bench/v1``; return problems."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    if record.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema must be {SCHEMA_VERSION!r}, got {record.get('schema')!r}"
        )
    for key in ("name", "title"):
        if not isinstance(record.get(key), str) or not record.get(key):
            errors.append(f"{key} must be a non-empty string")
    columns = record.get("columns")
    if (
        not isinstance(columns, list)
        or not columns
        or not all(isinstance(c, str) for c in columns)
    ):
        errors.append("columns must be a non-empty list of strings")
        columns = None
    rows = record.get("rows")
    if not isinstance(rows, list):
        errors.append("rows must be a list")
        rows = []
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"rows[{i}] must be an object")
            continue
        if not isinstance(row.get("dataset"), str) or not row.get("dataset"):
            errors.append(f"rows[{i}].dataset must be a non-empty string")
        cells = row.get("cells")
        if not isinstance(cells, list) or not all(
            isinstance(c, str) for c in cells
        ):
            errors.append(f"rows[{i}].cells must be a list of strings")
        elif columns is not None and len(cells) != len(columns) - 1:
            errors.append(
                f"rows[{i}] has {len(cells)} cells for "
                f"{len(columns) - 1} value columns"
            )
    if "qualitative" in record and not isinstance(
        record["qualitative"], dict
    ):
        errors.append("qualitative must be an object when present")
    return errors


def validate_file(path: str | Path) -> List[str]:
    """Validate one ``.json`` artefact; parse errors become problems."""
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    if isinstance(record, dict) and record.get("schema") in SIBLING_SCHEMAS:
        sibling = SIBLING_SCHEMAS[record["schema"]]
        return [f"{path.name}: {p}" for p in sibling(record)]
    problems = validate_record(record)
    if isinstance(record, dict) and record.get("name"):
        expected = f"{record['name']}.json"
        if path.name != expected:
            problems.append(
                f"file name {path.name!r} does not match record "
                f"name ({expected!r})"
            )
    return [f"{path.name}: {p}" for p in problems]


def validate_results_dir(directory: str | Path) -> List[str]:
    """Validate every ``*.json`` under a results directory.

    Also flags a ``.txt`` table that has no ``.json`` sibling, so a
    bench that forgot the JSON writer fails the tier-1 check.
    """
    directory = Path(directory)
    problems: List[str] = []
    for path in sorted(directory.glob("*.json")):
        problems.extend(validate_file(path))
    for txt in sorted(directory.glob("*.txt")):
        if not txt.with_suffix(".json").exists():
            problems.append(f"{txt.name}: missing JSON sibling")
    return problems
