"""Benchmark runner: executes programs with the paper's failure modes.

The paper reports three outcome kinds besides a time: out-of-memory
("OOM"), force-terminated computation ("> 1hr"), and force-terminated
*loading* ("LD > 1hr").  :func:`run_program` maps our exceptions onto
those outcomes, and :class:`BenchCache` memoises (algorithm, dataset)
outcomes so the Table III and Table V benches share one set of runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.api import MEMTRACEABLE, decompose
from repro.errors import (
    BufferOverflowError,
    DeviceOutOfMemoryError,
    SimulatedTimeLimitExceeded,
)
from repro.graph import datasets
from repro.result import DecompositionResult

__all__ = ["Outcome", "run_program", "BenchCache", "SIMULATED_HOUR_MS"]

#: the scaled equivalent of the paper's one-hour force-termination
#: budget (the datasets and device are ~2^12 smaller than the paper's)
SIMULATED_HOUR_MS = 400.0

#: programs whose time budget models *loading*, not compute
_LOAD_GATED = {"vetga"}


@dataclass(frozen=True)
class Outcome:
    """One cell of a paper table.

    ``peak_bytes`` / ``attribution`` carry the exact memory telemetry
    behind ``peak_memory_mb`` when the program is memtraceable
    (:data:`repro.api.MEMTRACEABLE`): ``attribution`` maps every array
    live at the peak (plus the ``(context)`` base) to its bytes, and
    sums exactly to ``peak_bytes``.
    """

    algorithm: str
    dataset: str
    status: str  # "ok" | "oom" | "timeout" | "load-timeout"
    simulated_ms: Optional[float] = None
    simulated_ms_std: float = 0.0
    peak_memory_mb: Optional[float] = None
    rounds: int = 0
    peak_bytes: Optional[int] = None
    attribution: Optional[Dict[str, int]] = None

    @property
    def cell(self) -> str:
        """Paper-style table cell: a time, "OOM", or "> 1hr"."""
        if self.status == "oom":
            return "OOM"
        if self.status == "load-timeout":
            return "LD > 1hr"
        if self.status == "timeout":
            return "> 1hr"
        if self.simulated_ms_std > 0:
            return f"{self.simulated_ms:.3f}±{self.simulated_ms_std:.3f}"
        return f"{self.simulated_ms:.3f}"

    @property
    def memory_cell(self) -> str:
        """Table V cell: peak MB or "N/A" for failed runs."""
        if self.peak_memory_mb is None:
            return "N/A"
        return f"{self.peak_memory_mb:.2f}"


def _kwargs_for(algorithm: str, budget_ms: Optional[float]) -> dict:
    if budget_ms is None:
        return {}
    gpu_side = algorithm in {
        "vetga", "medusa-mpm", "medusa-peel", "gunrock", "gswitch"
    }
    if gpu_side:
        return {"time_budget_ms": budget_ms}
    if algorithm.startswith("gpu-") and not algorithm.startswith("gpu-multi"):
        from repro.core.host import GpuPeelOptions

        return {"options": GpuPeelOptions(time_budget_ms=budget_ms)}
    return {}  # CPU programs run to completion; harness checks after


def run_program(
    algorithm: str,
    dataset: str,
    budget_ms: Optional[float] = SIMULATED_HOUR_MS,
    repeats: int = 1,
) -> Outcome:
    """Run ``algorithm`` on ``dataset`` and classify the outcome.

    ``repeats > 1`` reruns GPU kernels with different schedule-fuzz
    seeds and reports mean±std of the simulated time (the paper runs
    its GPU programs 100 times; our simulator is deterministic unless
    fuzzed, so the spread comes from schedule jitter).
    """
    graph = datasets.load(dataset)
    times = []
    result: Optional[DecompositionResult] = None
    for rep in range(max(1, repeats)):
        kwargs = _kwargs_for(algorithm, budget_ms)
        if algorithm in MEMTRACEABLE:
            # memory telemetry is observability-only (byte-identical
            # simulated time and peak), so every bench run carries it
            kwargs["memtrace"] = True
        if repeats > 1 and algorithm.startswith("gpu-"):
            from repro.core.host import GpuPeelOptions

            kwargs["options"] = GpuPeelOptions(
                time_budget_ms=budget_ms, preempt_prob=0.05, seed=rep
            )
        try:
            result = decompose(graph, algorithm, **kwargs)
        except DeviceOutOfMemoryError:
            return Outcome(algorithm, dataset, "oom")
        except BufferOverflowError:
            return Outcome(algorithm, dataset, "oom")
        except SimulatedTimeLimitExceeded:
            status = "load-timeout" if algorithm in _LOAD_GATED else "timeout"
            return Outcome(algorithm, dataset, status)
        times.append(result.simulated_ms)
    assert result is not None
    mean = float(np.mean(times))
    if budget_ms is not None and mean > budget_ms:
        # CPU programs have no in-run budget; classify afterwards
        return Outcome(algorithm, dataset, "timeout")
    memtrace = result.memtrace
    return Outcome(
        algorithm,
        dataset,
        "ok",
        simulated_ms=mean,
        simulated_ms_std=float(np.std(times)),
        peak_memory_mb=result.peak_memory_bytes / (1024 * 1024)
        if result.peak_memory_bytes
        else None,
        rounds=result.rounds,
        peak_bytes=memtrace.peak_bytes if memtrace is not None else None,
        attribution=(
            dict(memtrace.breakdown()) if memtrace is not None else None
        ),
    )


class BenchCache:
    """Memoised outcomes shared between benches (Tables III and V)."""

    def __init__(self, budget_ms: Optional[float] = SIMULATED_HOUR_MS):
        self.budget_ms = budget_ms
        self._memo: Dict[Tuple[str, str], Outcome] = {}

    def get(self, algorithm: str, dataset: str, repeats: int = 1) -> Outcome:
        key = (algorithm, dataset)
        if key not in self._memo:
            self._memo[key] = run_program(
                algorithm, dataset, budget_ms=self.budget_ms, repeats=repeats
            )
        return self._memo[key]
