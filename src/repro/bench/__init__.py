"""Benchmark harness: runners, outcome classification, table rendering."""

from repro.bench.runner import SIMULATED_HOUR_MS, BenchCache, Outcome, run_program
from repro.bench.tables import render_table, results_dir, write_table

__all__ = [
    "SIMULATED_HOUR_MS",
    "BenchCache",
    "Outcome",
    "run_program",
    "render_table",
    "results_dir",
    "write_table",
]
