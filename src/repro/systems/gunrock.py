"""Gunrock — data-centric frontier operations on the GPU (Wang et al.).

Gunrock programs are built from operations on a *frontier*: ``filter``
selects the vertices satisfying a predicate, ``advance`` expands a
frontier along its incident edges.  The bundled k-core app (which the
paper uses directly) runs, for each round ``k``:

1. ``filter`` over all still-alive vertices for ``degree == k``;
2. repeat: ``advance`` the frontier (decrementing neighbor degrees)
   and ``filter`` the output down to the vertices that just reached
   degree ``k`` — until the frontier empties.

Compared with Medusa this touches only frontier-incident edges, but it
re-filters the full vertex set every inner iteration and keeps
edge-sized frontier queues on the device — the bookkeeping that makes
it slower than GSWITCH and hungrier than the tailor-made kernel
(Tables III and V).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device
from repro.result import DecompositionResult
from repro.systems.base import (
    DEFAULT_TUNING,
    SystemTuning,
    finish_emulation,
    instrument_emulation,
    lint_emulation,
)

__all__ = ["gunrock_decompose"]


def gunrock_decompose(
    graph: CSRGraph,
    device: Device | None = None,
    tuning: SystemTuning = DEFAULT_TUNING,
    time_budget_ms: float | None = None,
    sanitize: bool = False,
    memtrace: bool = False,
    profile: bool = False,
) -> DecompositionResult:
    """Run Gunrock's k-core app on the simulated device.

    ``sanitize=True`` attaches the static lint report over this
    emulation's source (see :func:`~repro.systems.base.lint_emulation`).
    ``memtrace=True`` / ``profile=True`` attach the memory-telemetry
    and charge-profile reports (see
    :func:`~repro.systems.base.instrument_emulation`).
    """
    device = device or Device(time_budget_ms=time_budget_ms)
    tracker = instrument_emulation(
        device, "gunrock", memtrace=memtrace, profile=profile
    )
    n, m2 = graph.num_vertices, graph.neighbors.size
    if tracker is not None:
        tracker.set_scope("gunrock.init")
    device.malloc("gunrock_offsets", graph.offsets)
    device.malloc("gunrock_edges", graph.neighbors)
    device.malloc("gunrock_degrees", n)
    device.malloc(
        "gunrock_frontiers", int(tuning.gunrock_frontier_factor * m2) + 2 * n
    )
    if tracker is not None:
        tracker.set_scope(None)

    offsets, neighbors = graph.offsets, graph.neighbors
    deg = graph.degrees.astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    remaining = n
    iterations = 0
    frontier_peak = 0
    tr = device.tracer
    k = 0
    while remaining > 0:
        # filter over the full vertex set for the initial frontier
        device.charge(
            cycles=n * tuning.gunrock_filter_vertex_cycles,
            launches=tuning.gunrock_iteration_launches,
            label="gunrock.filter", args={"k": k},
        )
        frontier = np.flatnonzero(alive & (deg <= k))
        iterations += 1
        while frontier.size:
            if frontier.size > frontier_peak:
                frontier_peak = int(frontier.size)
            if tr is not None:
                tr.sample("frontier", device.elapsed_ms, frontier.size)
            core[frontier] = k
            alive[frontier] = False
            remaining -= frontier.size
            lengths = offsets[frontier + 1] - offsets[frontier]
            total = int(lengths.sum())
            # advance: expand frontier edges; filter: full vertex sweep
            device.charge(
                cycles=total * tuning.gunrock_advance_edge_cycles
                + n * tuning.gunrock_filter_vertex_cycles,
                launches=tuning.gunrock_iteration_launches,
                label="gunrock.advance+filter",
                args={"k": k, "frontier": int(frontier.size),
                      "edges": total},
            )
            iterations += 1
            if total == 0:
                frontier = np.empty(0, dtype=np.int64)
                continue
            starts = offsets[frontier]
            local = np.arange(total) - np.repeat(
                np.cumsum(lengths) - lengths, lengths
            )
            touched = neighbors[np.repeat(starts, lengths) + local]
            unique, counts = np.unique(touched, return_counts=True)
            live = alive[unique]
            affected = unique[live]
            deg[affected] -= counts[live]
            frontier = affected[deg[affected] <= k]
        k += 1

    counters = {
        "host.rounds": float(k),
        "system.iterations": float(iterations),
        "frontier.peak": float(frontier_peak),
        "frontier.total": float(n),
    }
    counters.update(device.counters())
    memtrace_report, profile_report = finish_emulation(device)
    return DecompositionResult(
        core=core,
        algorithm="gunrock",
        simulated_ms=device.elapsed_ms,
        peak_memory_bytes=device.peak_memory_bytes,
        rounds=k,
        stats={"iterations": iterations},
        counters=counters,
        trace=tr,
        sanitizer=lint_emulation(__name__) if sanitize else None,
        profile=profile_report,
        memtrace=memtrace_report,
    )
