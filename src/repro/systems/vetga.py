"""VETGA — vectorised k-core decomposition (Mehrafsa, Chester & Thomo).

VETGA reframes peeling in terms of whole-array vector primitives so it
can run on PyTorch's GPU tensor operations: every iteration applies a
fixed sequence of full-length masks, gathers, scatters and reductions —
no frontier, no custom kernels.  The price is that each iteration
touches entire ``n``- and ``m``-sized tensors however small the active
set, and that its (NumPy-based) loading pipeline is so slow the paper
force-terminates it after an hour on the four largest graphs
("LD > 1hr" in Table III).

Here the same vector-primitive algorithm runs on numpy (the natural
PyTorch stand-in), with the per-iteration tensor passes and the loading
cost charged to the device/host clocks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulatedTimeLimitExceeded
from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device
from repro.result import DecompositionResult
from repro.systems.base import (
    DEFAULT_TUNING,
    SystemTuning,
    finish_emulation,
    instrument_emulation,
    lint_emulation,
)

__all__ = ["vetga_decompose", "vetga_load_ms"]


def vetga_load_ms(graph: CSRGraph, tuning: SystemTuning = DEFAULT_TUNING) -> float:
    """Modelled host-side loading time (the "LD > 1hr" column)."""
    return graph.num_edges * tuning.vetga_load_us_per_edge / 1000.0


def vetga_decompose(
    graph: CSRGraph,
    device: Device | None = None,
    tuning: SystemTuning = DEFAULT_TUNING,
    time_budget_ms: float | None = None,
    include_load: bool = True,
    sanitize: bool = False,
    memtrace: bool = False,
    profile: bool = False,
) -> DecompositionResult:
    """Run the vector-primitive peeling algorithm.

    With ``include_load=True`` the modelled loading time counts against
    ``time_budget_ms`` first, reproducing the force-terminated loads.
    ``sanitize=True`` attaches the static lint report over this
    emulation's source (see :func:`~repro.systems.base.lint_emulation`).
    ``memtrace=True`` / ``profile=True`` attach the memory-telemetry
    and charge-profile reports (see
    :func:`~repro.systems.base.instrument_emulation`).
    """
    load_ms = vetga_load_ms(graph, tuning) if include_load else 0.0
    if time_budget_ms is not None and load_ms > time_budget_ms:
        raise SimulatedTimeLimitExceeded(load_ms, time_budget_ms)
    device = device or Device(time_budget_ms=time_budget_ms)
    tracker = instrument_emulation(
        device, "vetga", memtrace=memtrace, profile=profile
    )
    n, m2 = graph.num_vertices, graph.neighbors.size
    if tracker is not None:
        tracker.set_scope("vetga.init")
    # graph tensors plus the full-length temporaries of the vector ops
    device.malloc("vetga_offsets", n + 1)
    device.malloc("vetga_edges", m2)
    device.malloc(
        "vetga_temporaries", int(tuning.vetga_tensor_factor * (m2 + 2 * n))
    )
    if tracker is not None:
        tracker.set_scope(None)

    if load_ms and device.tracer is not None:
        device.tracer.instant("vetga.load", 0.0, cat="system",
                              track="host", args={"load_ms": load_ms})

    offsets, neighbors = graph.offsets, graph.neighbors
    sources = np.repeat(np.arange(n), np.diff(offsets))
    deg = graph.degrees.astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    iterations = 0
    k = 0
    while alive.any():
        progressed = True
        while progressed:
            # one vector iteration: full-length masks over V and E
            device.charge(
                cycles=(n + m2)
                * tuning.vetga_vector_op_cycles
                * tuning.vetga_passes_per_iteration,
                launches=1,
                label="vetga.vector_pass",
                args={"k": k, "elements": int(n + m2)},
            )
            iterations += 1
            peel_mask = alive & (deg <= k)
            progressed = bool(peel_mask.any())
            if not progressed:
                break
            core[peel_mask] = k
            alive[peel_mask] = False
            # vector primitive: edge mask -> scatter-add of decrements
            edge_hits = peel_mask[sources] & alive[neighbors]
            deg -= np.bincount(neighbors[edge_hits], minlength=n)
        k += 1

    counters = {
        "host.rounds": float(k),
        "system.iterations": float(iterations),
        "system.load_ms": float(load_ms),
    }
    counters.update(device.counters())
    memtrace_report, profile_report = finish_emulation(device)
    return DecompositionResult(
        core=core,
        algorithm="vetga",
        simulated_ms=device.elapsed_ms,
        peak_memory_bytes=device.peak_memory_bytes,
        rounds=k,
        stats={"iterations": iterations, "load_ms": load_ms},
        counters=counters,
        trace=device.tracer,
        sanitizer=lint_emulation(__name__) if sanitize else None,
        profile=profile_report,
        memtrace=memtrace_report,
    )
