"""Graph-parallel GPU system emulations: Medusa, Gunrock, GSWITCH, VETGA."""

from repro.systems.base import DEFAULT_TUNING, SystemTuning
from repro.systems.gswitch import gswitch_decompose
from repro.systems.gunrock import gunrock_decompose
from repro.systems.medusa import medusa_decompose
from repro.systems.vetga import vetga_decompose

__all__ = [
    "DEFAULT_TUNING",
    "SystemTuning",
    "gswitch_decompose",
    "gunrock_decompose",
    "medusa_decompose",
    "vetga_decompose",
]
