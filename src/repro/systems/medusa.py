"""Medusa — Pregel-style vertex-centric GPU system (Zhong & He).

A Medusa program supplies three UDFs (Section V of the paper):
``SendMessage`` (a vertex emits a value along each outgoing edge),
``CombineMessage`` (received messages are reduced per vertex) and
``UpdateVertex`` (the vertex state absorbs the combined value and may
raise a global "more iterations" flag).  Execution is strict BSP: every
superstep materialises a message per *directed edge* — the per-edge
buffers are why Medusa runs out of memory on the paper's large graphs
(Table V) and why it is slow (Table III): it sweeps all ``2m`` edges
every superstep regardless of how small the active set is.

Two programs are provided, exactly as in the paper:

* :class:`MedusaMPM` — h-index refinement; the combiner sorts each
  vertex's inbox, which is why its per-edge constant dwarfs the sum
  combiner's.
* :class:`MedusaPeel` — peeling; a deleted vertex sends 1, the combiner
  sums, and the update subtracts from the degree.  An outer loop over
  rounds ``k`` is added around Medusa's single iteration level.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.mpm import mpm_sweep
from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device
from repro.result import DecompositionResult
from repro.systems.base import (
    DEFAULT_TUNING,
    SystemTuning,
    finish_emulation,
    instrument_emulation,
    lint_emulation,
)

__all__ = ["medusa_decompose", "MedusaEngine", "MedusaMPM", "MedusaPeel"]


class MedusaEngine:
    """The BSP executor: owns device state and runs supersteps."""

    def __init__(
        self, graph: CSRGraph, device: Device, tuning: SystemTuning
    ) -> None:
        self.graph = graph
        self.device = device
        self.tuning = tuning
        n, m2 = graph.num_vertices, graph.neighbors.size
        tracker = device.memtracer
        if tracker is not None:
            tracker.set_scope("medusa.init")
        # graph + per-edge message machinery (the big allocation)
        device.malloc("medusa_offsets", graph.offsets)
        device.malloc("medusa_edges", graph.neighbors)
        device.malloc("medusa_vertex_state", n)
        device.malloc(
            "medusa_edge_state", int(tuning.medusa_edge_state_factor * m2)
        )
        if tracker is not None:
            tracker.set_scope(None)
        self.supersteps = 0

    def superstep(self, edge_cycles: float) -> None:
        """Account one full BSP superstep (all edges + all vertices)."""
        n, m2 = self.graph.num_vertices, self.graph.neighbors.size
        self.device.charge(
            cycles=m2 * edge_cycles + n * self.tuning.medusa_vertex_cycles,
            launches=self.tuning.medusa_superstep_launches,
            label="medusa.superstep",
            args={"superstep": self.supersteps, "edges": int(m2),
                  "vertices": int(n)},
        )
        self.supersteps += 1


class MedusaMPM:
    """The MPM program: SendMessage = own estimate, CombineMessage =
    h-index of the inbox, UpdateVertex = adopt it, flag on change."""

    name = "medusa-mpm"

    def run(self, engine: MedusaEngine) -> np.ndarray:
        graph = engine.graph
        estimates = graph.degrees.astype(np.int64).copy()
        while True:
            # SendMessage + CombineMessage + UpdateVertex in one sweep:
            # the h-index of each inbox is exactly one mpm_sweep.
            engine.superstep(engine.tuning.medusa_edge_hindex_cycles)
            refined = mpm_sweep(estimates, graph.offsets, graph.neighbors)
            if np.array_equal(refined, estimates):  # aggregate flag clear
                return refined
            estimates = refined


class MedusaPeel:
    """The peeling program with an added outer loop over rounds ``k``.

    SendMessage: a vertex deleted this iteration sends 1 to every
    neighbor (others send 0); CombineMessage: sum; UpdateVertex:
    subtract the count from the degree and mark for deletion when it
    drops to ``k``.
    """

    name = "medusa-peel"

    def run(self, engine: MedusaEngine) -> np.ndarray:
        graph = engine.graph
        n = graph.num_vertices
        offsets, neighbors = graph.offsets, graph.neighbors
        deg = graph.degrees.astype(np.int64).copy()
        core = np.zeros(n, dtype=np.int64)
        deleted = np.zeros(n, dtype=bool)
        sources = np.repeat(np.arange(n), np.diff(offsets))
        k = 0
        while not deleted.all():
            while True:
                just_deleted = ~deleted & (deg <= k)
                engine.superstep(engine.tuning.medusa_edge_sum_cycles)
                if not just_deleted.any():
                    break  # aggregate flag clear: this round is done
                core[just_deleted] = k
                deleted[just_deleted] = True
                # message = 1 along every edge out of a deleted vertex
                live_msg = just_deleted[sources] & ~deleted[neighbors]
                counts = np.bincount(neighbors[live_msg], minlength=n)
                deg -= counts
            k += 1
        return core


def medusa_decompose(
    graph: CSRGraph,
    program: str = "peel",
    device: Device | None = None,
    tuning: SystemTuning = DEFAULT_TUNING,
    time_budget_ms: float | None = None,
    sanitize: bool = False,
    memtrace: bool = False,
    profile: bool = False,
) -> DecompositionResult:
    """Run a Medusa program; ``program`` is ``"peel"`` or ``"mpm"``.

    Raises :class:`~repro.errors.DeviceOutOfMemoryError` /
    :class:`~repro.errors.SimulatedTimeLimitExceeded` the way the real
    runs OOM or exceed one hour in Tables III and V.
    ``sanitize=True`` attaches the static lint report over this
    emulation's source (see :func:`~repro.systems.base.lint_emulation`).
    ``memtrace=True`` / ``profile=True`` attach the memory-telemetry
    and charge-profile reports (see
    :func:`~repro.systems.base.instrument_emulation`).
    """
    device = device or Device(time_budget_ms=time_budget_ms)
    instrument_emulation(
        device, f"medusa-{program}", memtrace=memtrace, profile=profile
    )
    engine = MedusaEngine(graph, device, tuning)
    prog = MedusaMPM() if program == "mpm" else MedusaPeel()
    core = prog.run(engine)
    kmax = int(core.max()) if core.size else 0
    counters = {
        "host.rounds": float(kmax + 1),
        "system.supersteps": float(engine.supersteps),
        "system.edges_per_superstep": float(graph.neighbors.size),
    }
    counters.update(device.counters())
    memtrace_report, profile_report = finish_emulation(device)
    return DecompositionResult(
        core=core,
        algorithm=prog.name,
        simulated_ms=device.elapsed_ms,
        peak_memory_bytes=device.peak_memory_bytes,
        rounds=kmax + 1,
        stats={"supersteps": engine.supersteps},
        counters=counters,
        trace=device.tracer,
        sanitizer=lint_emulation(__name__) if sanitize else None,
        profile=profile_report,
        memtrace=memtrace_report,
    )
