"""Shared machinery for the graph-parallel system emulations.

Each system (Medusa, Gunrock, GSWITCH, VETGA) is re-implemented at the
level of its *programming model*: the same UDF structure, the same
iteration scheme, the same memory layout.  Execution is vectorised, and
each system converts the quantities it genuinely incurs — edges swept
per superstep, vertices filtered, frontier expansions, kernel launches
— into device cycles with per-system tuning constants.

The constants encode McSherry et al.'s observation (and Table III's
measurement) that general-purpose systems pay large per-element
overheads over a tailor-made kernel: message construction and combiner
machinery in Medusa (sorting for an h-index combiner is far costlier
than a sum), frontier bookkeeping in Gunrock, autotuned-but-still
-generic dispatch in GSWITCH, and full-length vector temporaries in
VETGA.  Values are calibrated against the ratios of Table III (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.device import Device
    from repro.memtrace.report import MemtraceReport
    from repro.memtrace.tracker import MemoryTracker
    from repro.profile.report import ProfileReport
    from repro.sanitize.report import SanitizerReport

__all__ = [
    "SystemTuning",
    "DEFAULT_TUNING",
    "finish_emulation",
    "instrument_emulation",
    "lint_emulation",
]


@dataclass(frozen=True)
class SystemTuning:
    """Per-system cycle costs (per element per pass) and overheads."""

    # Medusa: strict BSP, processes EVERY edge each superstep
    medusa_edge_sum_cycles: float = 3.0      # Peel program: sum combiner
    medusa_edge_hindex_cycles: float = 150.0  # MPM program: sort-based combiner
    medusa_vertex_cycles: float = 4.0
    medusa_superstep_launches: int = 3        # send / combine / update kernels

    # Gunrock: data-centric advance/filter over frontiers
    gunrock_filter_vertex_cycles: float = 2.0
    gunrock_advance_edge_cycles: float = 4.0
    gunrock_iteration_launches: int = 3

    # GSWITCH: autotuned kernels, compacted active set
    gswitch_filter_vertex_cycles: float = 0.7
    gswitch_advance_edge_cycles: float = 1.6
    gswitch_iteration_launches: int = 1
    gswitch_tuning_cycles: float = 300.0      # per-iteration feature probe

    # VETGA: full-length vector primitives per iteration (PyTorch-style)
    vetga_vector_op_cycles: float = 0.35      # per element per pass
    vetga_passes_per_iteration: float = 6.0   # the vector ops of one peel step
    vetga_load_us_per_edge: float = 2.7       # slow host-side loading

    # memory blow-ups relative to the CSR arrays (drives Table V / OOM)
    medusa_edge_state_factor: float = 1.5     # per-edge message + index buffers
    gunrock_frontier_factor: float = 1.5      # frontier queues sized by edges
    gswitch_frontier_factor: float = 0.95
    vetga_tensor_factor: float = 1.2          # int64 tensors + temporaries


DEFAULT_TUNING = SystemTuning()


def instrument_emulation(
    device: "Device",
    algorithm: str,
    memtrace: bool = False,
    profile: bool = False,
) -> "MemoryTracker | None":
    """Attach the requested observability layers to an emulation device.

    ``profile=True`` gives the device a
    :class:`~repro.profile.profiler.KernelProfiler`: the emulations
    launch no SIMT kernels, so every labelled
    :meth:`~repro.gpusim.device.Device.charge` becomes a coarse
    ``source="charge"`` record — enough for ``--ncu`` to attribute
    where a Gunrock or Medusa run spends its cycles.

    ``memtrace=True`` gives it a
    :class:`~repro.memtrace.tracker.MemoryTracker`; anything already
    resident on a caller-supplied device is folded into the opaque base.
    Returns the device's tracker (possibly pre-existing), or ``None``.
    """
    if profile and device.profiler is None:
        from repro.profile.profiler import KernelProfiler

        device.profiler = KernelProfiler()
    if device.profiler is not None:
        device.profiler.annotate(algorithm=algorithm)
    if memtrace and device.memtracer is None:
        from repro.memtrace.tracker import MemoryTracker

        tracker = MemoryTracker()
        tracker.attach(device.memory.in_use, ts_ms=device.elapsed_ms)
        device.memtracer = tracker
    if device.memtracer is not None:
        device.memtracer.annotate(algorithm=algorithm)
    return device.memtracer


def finish_emulation(
    device: "Device",
) -> "tuple[MemtraceReport | None, ProfileReport | None]":
    """Close the observability layers of one emulation run.

    With a memory tracker attached, frees every live device array (so
    all lifetimes close and genuine leaks stay detectable) and
    finalises the tracker; untraced devices keep their contents for
    post-run inspection, as before.  Returns the
    ``(memtrace, profile)`` report pair for the result.
    """
    memtrace = None
    if device.memtracer is not None:
        device.free_all()
        device.memtracer.finish(device.elapsed_ms)
        memtrace = device.memtracer.report()
    profile = (
        device.profiler.report() if device.profiler is not None else None
    )
    return memtrace, profile


def lint_emulation(module_name: str) -> "SanitizerReport":
    """Sanitizer report for one system emulation's own source.

    The emulations execute vectorised on the host and book device time
    through :meth:`~repro.gpusim.device.Device.charge` — they launch no
    SIMT kernels, so there is nothing for the dynamic racecheck to
    shadow.  ``sanitize=True`` on an emulation therefore degrades to
    the static lint pass (:mod:`repro.sanitize.lint`) over the
    emulation's module plus this shared base, which still catches any
    kernel-style generator that sneaks in with wall-clock, RNG or
    host-mutation misuse.
    """
    from repro.sanitize.lint import lint_module
    from repro.sanitize.report import SanitizerReport

    report = SanitizerReport()
    for name in (module_name, __name__):
        report.extend(lint_module(sys.modules[name]))
        report.modules_linted += 1
    return report
