"""GSWITCH — pattern-based algorithmic autotuning (Meng et al.).

GSWITCH exposes ``filter`` / ``comp`` / ``emit`` UDFs and, per
iteration, *autotunes* the kernel configuration (push vs. pull
traversal, compact vs. bitmap frontier) from features of the previous
iteration — which is why it is the fastest system in Table III, while
still paying generic-framework overheads against the tailor-made
kernel.

Two quirks from the paper's Section V are preserved:

* GSWITCH has no easy way to write the *outer* loop over rounds, so the
  program simply runs ``k_max + 1`` rounds with the graph's core number
  obtained beforehand ("n is hardcoded as the core number of each input
  graph") — here computed with the fast native path, charged to the host
  not the device, exactly like the authors' hardcoding;
* each iteration pays a small feature-sampling cost for the autotuner.
"""

from __future__ import annotations

import numpy as np

from repro.core.fastpath import peel_fast
from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device
from repro.result import DecompositionResult
from repro.systems.base import (
    DEFAULT_TUNING,
    SystemTuning,
    finish_emulation,
    instrument_emulation,
    lint_emulation,
)

__all__ = ["gswitch_decompose"]


def gswitch_decompose(
    graph: CSRGraph,
    device: Device | None = None,
    tuning: SystemTuning = DEFAULT_TUNING,
    time_budget_ms: float | None = None,
    sanitize: bool = False,
    memtrace: bool = False,
    profile: bool = False,
) -> DecompositionResult:
    """Run the GSWITCH k-core program on the simulated device.

    ``sanitize=True`` attaches the static lint report over this
    emulation's source (see :func:`~repro.systems.base.lint_emulation`).
    ``memtrace=True`` / ``profile=True`` attach the memory-telemetry
    and charge-profile reports (see
    :func:`~repro.systems.base.instrument_emulation`).
    """
    device = device or Device(time_budget_ms=time_budget_ms)
    tracker = instrument_emulation(
        device, "gswitch", memtrace=memtrace, profile=profile
    )
    n, m2 = graph.num_vertices, graph.neighbors.size
    if tracker is not None:
        tracker.set_scope("gswitch.init")
    device.malloc("gswitch_offsets", graph.offsets)
    device.malloc("gswitch_edges", graph.neighbors)
    device.malloc("gswitch_degrees", n)
    device.malloc(
        "gswitch_frontiers", int(tuning.gswitch_frontier_factor * m2) + 2 * n
    )
    if tracker is not None:
        tracker.set_scope(None)

    offsets, neighbors = graph.offsets, graph.neighbors
    deg = graph.degrees.astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    # the hardcoded outer-round count (host-side preprocessing)
    kmax = int(peel_fast(graph).max()) if n else 0
    iterations = 0
    pushes = 0
    frontier_peak = 0
    tr = device.tracer
    active = np.arange(n)  # compacted active set, maintained per round
    for k in range(kmax + 1):
        active = active[alive[active]]
        device.charge(
            cycles=active.size * tuning.gswitch_filter_vertex_cycles
            + tuning.gswitch_tuning_cycles,
            launches=tuning.gswitch_iteration_launches,
            label="gswitch.filter",
            args={"k": k, "active": int(active.size)},
        )
        frontier = active[deg[active] <= k]
        iterations += 1
        while frontier.size:
            if frontier.size > frontier_peak:
                frontier_peak = int(frontier.size)
            if tr is not None:
                tr.sample("frontier", device.elapsed_ms, frontier.size)
            core[frontier] = k
            alive[frontier] = False
            lengths = offsets[frontier + 1] - offsets[frontier]
            total = int(lengths.sum())
            # autotune: push (expand frontier) vs pull (sweep active set)
            push_cost = total * tuning.gswitch_advance_edge_cycles
            pull_cost = active.size * tuning.gswitch_filter_vertex_cycles * 2
            if push_cost <= pull_cost:
                pushes += 1
            device.charge(
                cycles=min(push_cost, pull_cost)
                + active.size * tuning.gswitch_filter_vertex_cycles
                + tuning.gswitch_tuning_cycles,
                launches=tuning.gswitch_iteration_launches,
                label="gswitch.iterate",
                args={"k": k, "frontier": int(frontier.size),
                      "mode": "push" if push_cost <= pull_cost else "pull"},
            )
            iterations += 1
            if total == 0:
                frontier = np.empty(0, dtype=np.int64)
                continue
            starts = offsets[frontier]
            local = np.arange(total) - np.repeat(
                np.cumsum(lengths) - lengths, lengths
            )
            touched = neighbors[np.repeat(starts, lengths) + local]
            unique, counts = np.unique(touched, return_counts=True)
            live = alive[unique]
            affected = unique[live]
            deg[affected] -= counts[live]
            frontier = affected[deg[affected] <= k]

    counters = {
        "host.rounds": float(kmax + 1),
        "system.iterations": float(iterations),
        "system.push_iterations": float(pushes),
        "frontier.peak": float(frontier_peak),
    }
    counters.update(device.counters())
    memtrace_report, profile_report = finish_emulation(device)
    return DecompositionResult(
        core=core,
        algorithm="gswitch",
        simulated_ms=device.elapsed_ms,
        peak_memory_bytes=device.peak_memory_bytes,
        rounds=kmax + 1,
        stats={"iterations": iterations, "push_iterations": pushes},
        counters=counters,
        trace=tr,
        sanitizer=lint_emulation(__name__) if sanitize else None,
        profile=profile_report,
        memtrace=memtrace_report,
    )
