"""Semi-external (disk-based) k-core decomposition.

The paper's Section II-C points to disk-based algorithms (Cheng et al.
EMcore; Khaouid et al.'s single-PC study; Wen et al.'s I/O-efficient
decomposition) for graphs beyond a single machine's memory.  This
module implements the *semi-external* model those works target: the
algorithm may hold ``O(|V|)`` state in memory (degree, liveness, core
arrays) while the edge list stays on disk and is only ever *streamed*.

Each peel round ``k`` runs one or more sequential passes over the edge
file: a pass marks every live vertex whose current degree is ``<= k``
as peeled and decrements the degrees of their streamed neighbors;
cascades discovered by a pass are handled by the next pass, so the
pass count per round equals the peel cascade depth.  The harness
reports the quantity disk-based algorithms live and die by: bytes
streamed and pass counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import iter_edgelist_lines, write_edgelist
from repro.result import DecompositionResult

__all__ = ["SemiExternalConfig", "semi_external_decompose"]


@dataclass(frozen=True)
class SemiExternalConfig:
    """Cost constants of the simulated storage stack."""

    #: sequential-read bandwidth used to convert streamed bytes to time
    disk_mb_per_s: float = 500.0
    #: per-pass fixed cost (open + seek), milliseconds
    pass_overhead_ms: float = 0.05
    #: bytes of one on-disk edge record (two ASCII IDs + separators)
    bytes_per_edge: float = 14.0


def _stream_degrees(path: Path) -> tuple[np.ndarray, int]:
    """Pass 0: count degrees (and vertices) from the edge stream."""
    degrees: dict[int, int] = {}
    edges = 0
    max_id = -1
    for u, v in iter_edgelist_lines(path):
        if u == v:
            continue
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
        max_id = max(max_id, u, v)
        edges += 1
    deg = np.zeros(max_id + 1, dtype=np.int64)
    for vertex, d in degrees.items():
        deg[vertex] = d
    return deg, edges


def semi_external_decompose(
    edge_file: str | Path,
    config: SemiExternalConfig | None = None,
) -> DecompositionResult:
    """Decompose the graph stored in ``edge_file`` without ever loading
    its edges into memory.

    The file must be a plain (or gzipped) undirected edge list, each
    edge appearing once — :func:`repro.graph.io.write_edgelist` output
    qualifies.  Returns a result whose ``stats`` include the pass count
    and total streamed bytes.
    """
    config = config or SemiExternalConfig()
    edge_file = Path(edge_file)

    deg, num_edges = _stream_degrees(edge_file)
    n = deg.size
    passes = 1  # the degree-counting pass
    core = np.zeros(n, dtype=np.int64)
    alive = deg > 0  # isolated vertices resolve immediately to core 0
    remaining = int(alive.sum())
    k = 0
    while remaining > 0:
        # in-memory scan: this round's current shell (O(|V|) state)
        shell = alive & (deg <= k)
        while shell.any():
            core[shell] = k
            alive[shell] = False
            remaining -= int(shell.sum())
            # one sequential pass: decrement live endpoints of every
            # edge incident to a just-peeled vertex
            passes += 1
            decrements = np.zeros(n, dtype=np.int64)
            for u, v in iter_edgelist_lines(edge_file):
                if u == v:
                    continue
                if shell[u] and alive[v]:
                    decrements[v] += 1
                if shell[v] and alive[u]:
                    decrements[u] += 1
            deg -= decrements
            shell = alive & (deg <= k)  # the cascade, next pass
        k += 1

    streamed_bytes = passes * num_edges * config.bytes_per_edge
    io_ms = (
        streamed_bytes / (config.disk_mb_per_s * 1024 * 1024) * 1000.0
        + passes * config.pass_overhead_ms
    )
    return DecompositionResult(
        core=core,
        algorithm="semi-external",
        simulated_ms=io_ms,
        peak_memory_bytes=8 * 4 * n,  # the O(|V|) in-memory arrays
        rounds=k,
        stats={
            "passes": passes,
            "streamed_bytes": int(streamed_bytes),
            "edges": num_edges,
        },
    )


def decompose_graph_via_disk(
    graph: CSRGraph, work_dir: str | Path,
    config: SemiExternalConfig | None = None,
) -> DecompositionResult:
    """Convenience: spill ``graph`` to ``work_dir`` and run the
    semi-external algorithm on the file (round-trips through real IO)."""
    path = Path(work_dir) / "graph.edges"
    write_edgelist(graph, path)
    return semi_external_decompose(path, config=config)
