"""Semi-external (disk-based) k-core decomposition.

The paper's Section II-C points to disk-based algorithms (Cheng et al.
EMcore; Khaouid et al.'s single-PC study; Wen et al.'s I/O-efficient
decomposition) for graphs beyond a single machine's memory.  This
module implements the *semi-external* model those works target: the
algorithm may hold ``O(|V|)`` state in memory (degree, liveness, core
arrays) while the edge list stays on disk and is only ever *streamed*.

Each peel round ``k`` runs one or more sequential passes over the edge
file: a pass marks every live vertex whose current degree is ``<= k``
as peeled and decrements the degrees of their streamed neighbors;
cascades discovered by a pass are handled by the next pass, so the
pass count per round equals the peel cascade depth.  The harness
reports the quantity disk-based algorithms live and die by: bytes
streamed and pass counts.

Telemetry
---------
Every result carries always-on ``disk.*`` counters (page-in/page-out
bytes, pass count, the disk-resident high-water mark); they are derived
from the same quantities as the time model, so traced and untraced runs
are byte-identical.  When a process-wide tracer is active each pass
additionally becomes a span on the ``disk`` track with a
``disk.resident_bytes`` counter track alongside, and ``memtrace=True``
attaches allocation lifetimes for the four ``O(|V|)`` in-memory arrays
(summing exactly to ``peak_memory_bytes``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import iter_edgelist_lines, write_edgelist
from repro.memtrace.tracker import MemoryTracker
from repro.obs import active_tracer
from repro.result import DecompositionResult

__all__ = [
    "SemiExternalConfig",
    "semi_external_decompose",
    "decompose_graph_via_disk",
]

#: the modelled ``O(|V|)`` in-memory arrays (8 bytes per vertex each)
_ARRAYS = ("deg", "core", "alive", "decrements")


@dataclass(frozen=True)
class SemiExternalConfig:
    """Cost constants of the simulated storage stack."""

    #: sequential-read bandwidth used to convert streamed bytes to time
    disk_mb_per_s: float = 500.0
    #: per-pass fixed cost (open + seek), milliseconds
    pass_overhead_ms: float = 0.05
    #: bytes of one on-disk edge record (two ASCII IDs + separators)
    bytes_per_edge: float = 14.0


def _stream_degrees(path: Path) -> tuple[np.ndarray, int]:
    """Pass 0: count degrees (and vertices) from the edge stream."""
    degrees: dict[int, int] = {}
    edges = 0
    max_id = -1
    for u, v in iter_edgelist_lines(path):
        if u == v:
            continue
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
        max_id = max(max_id, u, v)
        edges += 1
    deg = np.zeros(max_id + 1, dtype=np.int64)
    for vertex, d in degrees.items():
        deg[vertex] = d
    return deg, edges


def semi_external_decompose(
    edge_file: str | Path,
    config: SemiExternalConfig | None = None,
    memtrace: bool = False,
    num_vertices: int | None = None,
) -> DecompositionResult:
    """Decompose the graph stored in ``edge_file`` without ever loading
    its edges into memory.

    The file must be a plain (or gzipped) undirected edge list, each
    edge appearing once — :func:`repro.graph.io.write_edgelist` output
    qualifies.  An edge list cannot represent trailing isolated
    vertices, so callers that know the true vertex count (e.g. the
    spill path) pass ``num_vertices``; those vertices resolve to core 0
    without touching the stream.  Returns a result whose ``stats``
    include the pass count and total streamed bytes, and whose counters
    carry the ``disk.*`` I/O telemetry.  ``memtrace=True`` attaches
    allocation lifetimes for the in-memory arrays (observability-only).
    """
    config = config or SemiExternalConfig()
    edge_file = Path(edge_file)
    tr = active_tracer()

    deg, num_edges = _stream_degrees(edge_file)
    if num_vertices is not None and num_vertices > deg.size:
        deg = np.concatenate(
            [deg, np.zeros(num_vertices - deg.size, dtype=np.int64)]
        )
    n = deg.size
    #: on-disk bytes of the edge list — the disk-resident high-water
    #: mark; every sequential pass pages in exactly this many bytes
    resident_bytes = int(num_edges * config.bytes_per_edge)
    pass_ms = (
        resident_bytes / (config.disk_mb_per_s * 1024 * 1024) * 1000.0
        + config.pass_overhead_ms
    )
    clock_ms = 0.0  # trace-only pass clock; never feeds the time model
    if tr is not None:
        tr.span("pass", 0.0, pass_ms, cat="disk", track="disk",
                args={"pass": 0, "kind": "degree-count",
                      "page_in_bytes": resident_bytes})
        tr.sample("disk.resident_bytes", pass_ms, resident_bytes,
                  track="disk")
        clock_ms = pass_ms
    tracker = MemoryTracker(worker="cpu") if memtrace else None
    if tracker is not None:
        for name in _ARRAYS:
            tracker.on_malloc(name, 8 * n, 0.0)
    passes = 1  # the degree-counting pass
    core = np.zeros(n, dtype=np.int64)
    alive = deg > 0  # isolated vertices resolve immediately to core 0
    remaining = int(alive.sum())
    k = 0
    while remaining > 0:
        # in-memory scan: this round's current shell (O(|V|) state)
        shell = alive & (deg <= k)
        while shell.any():
            core[shell] = k
            alive[shell] = False
            remaining -= int(shell.sum())
            # one sequential pass: decrement live endpoints of every
            # edge incident to a just-peeled vertex
            passes += 1
            decrements = np.zeros(n, dtype=np.int64)
            for u, v in iter_edgelist_lines(edge_file):
                if u == v:
                    continue
                if shell[u] and alive[v]:
                    decrements[v] += 1
                if shell[v] and alive[u]:
                    decrements[u] += 1
            deg -= decrements
            if tr is not None:
                tr.span("pass", clock_ms, pass_ms, cat="disk",
                        track="disk",
                        args={"pass": passes - 1, "round": k,
                              "page_in_bytes": resident_bytes})
                clock_ms += pass_ms
                tr.sample("disk.resident_bytes", clock_ms,
                          resident_bytes, track="disk")
            shell = alive & (deg <= k)  # the cascade, next pass
        k += 1

    streamed_bytes = passes * num_edges * config.bytes_per_edge
    io_ms = (
        streamed_bytes / (config.disk_mb_per_s * 1024 * 1024) * 1000.0
        + passes * config.pass_overhead_ms
    )
    # page-in bytes are defined as passes x resident so the identity
    # ``page_in == passes * resident`` holds for any config; the float
    # ``streamed_bytes`` the time model uses stays untouched
    counters = {
        "host.rounds": float(k),
        "disk.passes": float(passes),
        "disk.page_in_bytes": float(passes * resident_bytes),
        "disk.page_out_bytes": 0.0,
        "disk.resident_peak_bytes": float(resident_bytes),
    }
    if tr is not None:
        for name, value in counters.items():
            if name != "host.rounds":
                tr.add(name, value)
    if tracker is not None:
        for name in _ARRAYS:
            tracker.on_free(name, io_ms)
        tracker.finish(io_ms)
    return DecompositionResult(
        core=core,
        algorithm="semi-external",
        simulated_ms=io_ms,
        peak_memory_bytes=8 * 4 * n,  # the O(|V|) in-memory arrays
        rounds=k,
        stats={
            "passes": passes,
            "streamed_bytes": int(streamed_bytes),
            "edges": num_edges,
        },
        counters=counters,
        trace=tr,
        memtrace=tracker.report(algorithm="semi-external")
        if tracker is not None else None,
    )


def decompose_graph_via_disk(
    graph: CSRGraph, work_dir: str | Path,
    config: SemiExternalConfig | None = None,
    memtrace: bool = False,
) -> DecompositionResult:
    """Convenience: spill ``graph`` to ``work_dir`` and run the
    semi-external algorithm on the file (round-trips through real IO).

    The spill is accounted as ``disk.page_out_bytes`` (one modelled
    record per edge, the same constant the streaming model charges for
    reads).
    """
    config = config or SemiExternalConfig()
    path = Path(work_dir) / "graph.edges"
    write_edgelist(graph, path)
    result = semi_external_decompose(path, config=config,
                                     memtrace=memtrace,
                                     num_vertices=graph.num_vertices)
    page_out = float(
        int(result.stats["edges"] * config.bytes_per_edge)
    )
    counters = dict(result.counters)
    counters["disk.page_out_bytes"] = page_out
    tr = result.trace
    if tr is not None:
        tr.add("disk.page_out_bytes", page_out)
    return dc_replace(result, counters=counters)
