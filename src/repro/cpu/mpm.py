"""MPM — distributed-style k-core decomposition by h-index refinement
(Montresor, De Pellegrini & Miorandi).

Every vertex holds a core-number estimate ``a(v)``, initialised to its
degree, and repeatedly replaces it with the *h-index* of its neighbors'
estimates (Fig. 2 of the paper): sort the neighbor estimates in
non-increasing order and take the largest ``i`` with ``A[i] >= i``.
When no estimate changes, ``a(v) == core(v)`` for all vertices.

Each vertex recomputes many times, so total workload exceeds the
peeling algorithms' single-visit workload — the reason MPM loses to PKC
on shared-memory machines (Table IV) despite its minimal coordination.

The sweep here is synchronous (Jacobi-style) and fully vectorised: all
h-indices of a sweep are computed from the previous sweep's estimates.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.memtrace.tracker import MemoryTracker
from repro.multicore.costmodel import CpuCostModel
from repro.multicore.machine import SimulatedMulticore
from repro.result import DecompositionResult

__all__ = ["h_index", "mpm_sweep", "mpm_core_numbers", "mpm_decompose"]


def h_index(values: np.ndarray) -> int:
    """The h-index of a multiset: ``max{i : A[i] >= i}`` after sorting
    non-increasingly (0 for an empty multiset).

    >>> h_index(np.array([5, 5, 3, 3, 2, 2]))
    3
    """
    values = np.sort(np.asarray(values))[::-1]
    ranks = np.arange(1, values.size + 1)
    satisfied = values >= ranks
    return int(satisfied.sum())  # prefix property: count == prefix length


def mpm_sweep(
    estimates: np.ndarray, offsets: np.ndarray, neighbors: np.ndarray
) -> np.ndarray:
    """One synchronous h-index refinement sweep over every vertex."""
    n = offsets.size - 1
    degrees = np.diff(offsets)
    values = estimates[neighbors]
    segments = np.repeat(np.arange(n), degrees)
    order = np.lexsort((-values, segments))
    sorted_values = values[order]
    ranks = np.arange(neighbors.size) - np.repeat(offsets[:-1], degrees)
    satisfied = sorted_values >= ranks + 1
    # within each segment the satisfied positions are a prefix, so the
    # per-segment count *is* the h-index
    if neighbors.size == 0:
        return np.zeros(n, dtype=np.int64)
    cumulative = np.cumsum(satisfied)
    ends = offsets[1:]
    starts = offsets[:-1]
    upper = cumulative[ends - 1]
    lower = np.where(starts > 0, cumulative[starts - 1], 0)
    h = np.where(ends > starts, upper - lower, 0)
    return np.minimum(estimates, h)


def mpm_core_numbers(graph: CSRGraph) -> tuple[np.ndarray, int]:
    """Iterate :func:`mpm_sweep` to the fixpoint.

    Returns ``(core_numbers, sweeps)``.
    """
    estimates = graph.degrees.astype(np.int64).copy()
    sweeps = 0
    while True:
        sweeps += 1
        refined = mpm_sweep(estimates, graph.offsets, graph.neighbors)
        if np.array_equal(refined, estimates):
            return refined, sweeps
        estimates = refined


def mpm_decompose(
    graph: CSRGraph,
    parallel: bool = True,
    cost: CpuCostModel | None = None,
    profile: bool = False,
    memtrace: bool = False,
) -> DecompositionResult:
    """MPM as a :class:`DecompositionResult` for the Table IV harness.

    Every sweep touches every edge plus an ``O(deg log deg)`` sort per
    vertex; threads partition the vertices, and one barrier separates
    sweeps.  ``profile``/``memtrace`` attach per-epoch bound
    attribution and allocation-lifetime telemetry — observability-only,
    byte-identical results either way.
    """
    cost = cost or CpuCostModel()
    threads = cost.threads if parallel else 1
    tracker = MemoryTracker(worker="cpu") if memtrace else None
    machine = SimulatedMulticore(
        cost, threads=threads, profile=profile, memtracer=tracker
    )
    n = graph.num_vertices
    degrees = graph.degrees
    # the modelled working set behind ``peak_memory_bytes``: three
    # 8-byte |V| arrays plus the 8-byte neighbor list (Table V row)
    if tracker is not None:
        machine.track_alloc("neighbors", 8 * graph.neighbors.size)
        for label in ("estimates", "refined", "core"):
            machine.track_alloc(label, 8 * n)

    core, sweeps = mpm_core_numbers(graph)

    # per-vertex sweep cost: gather + sort + scan of the neighbor list
    per_vertex = degrees * (2.0 + np.log2(np.maximum(degrees, 2))) + 4.0
    owner = np.arange(n) % threads
    per_thread = np.bincount(owner, weights=per_vertex, minlength=threads)
    for _ in range(sweeps):
        for t in np.flatnonzero(per_thread):
            machine.add_ops(int(t), float(per_thread[t]))
        if parallel:
            machine.barrier()

    name = "mpm" if parallel else "mpm-serial"
    if tracker is not None:
        for label in ("neighbors", "estimates", "refined", "core"):
            machine.track_free(label)
    simulated_ms = machine.finish()
    counters = {"host.rounds": float(sweeps),
                "cpu.sweeps": float(sweeps)}
    counters.update(machine.counters())
    return DecompositionResult(
        core=core,
        algorithm=name,
        simulated_ms=simulated_ms,
        peak_memory_bytes=8 * (3 * n + graph.neighbors.size),
        rounds=sweeps,
        stats={
            "threads": threads,
            "sweeps": sweeps,
            "total_ops": machine.total_ops,
        },
        counters=counters,
        trace=machine.tracer,
        profile=machine.profile_report(name) if profile else None,
        memtrace=tracker.report(algorithm=name)
        if tracker is not None else None,
    )
