"""Pure-Python dict-based decomposition — the NetworkX baseline.

NetworkX's ``core_number`` implements the Batagelj–Zaversnik algorithm
over Python dicts and lists.  Table IV's point is not algorithmic — it
is that interpreted per-element machinery costs orders of magnitude
more than compiled arrays, and that loading a big edge list through
pure Python can exceed an hour.  This module genuinely executes the
dict-based algorithm (so its result is validated like everything else)
while counting interpreted operations for the cost model, and models
the loading cost separately (the "LD > 1hr" rows).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.multicore.costmodel import CpuCostModel
from repro.result import DecompositionResult

__all__ = ["networkx_style_core_numbers", "networkx_style_decompose"]


def networkx_style_core_numbers(graph: CSRGraph) -> tuple[np.ndarray, int]:
    """Dict-based BZ exactly as NetworkX implements it.

    Returns ``(core, interpreted_ops)`` where ``interpreted_ops`` counts
    the dict/list touches the interpreter performed.
    """
    ops = 0
    n = graph.num_vertices
    degrees = {v: graph.degree(v) for v in range(n)}
    ops += n
    # sort vertices by degree (NetworkX sorts the node list)
    nodes = sorted(degrees, key=lambda v: degrees[v])
    ops += int(n * max(1, np.log2(n + 1)))
    bin_boundaries = [0]
    curr_degree = 0
    for i, v in enumerate(nodes):
        if degrees[v] > curr_degree:
            bin_boundaries.extend([i] * (degrees[v] - curr_degree))
            curr_degree = degrees[v]
        ops += 1
    node_pos = {v: pos for pos, v in enumerate(nodes)}
    ops += n
    core = dict(degrees)
    neighbors_of = {v: list(graph.neighbors_of(v)) for v in range(n)}
    ops += n + graph.neighbors.size
    for v in nodes:
        for u in neighbors_of[v]:
            ops += 1
            if core[u] > core[v]:
                pos = node_pos[u]
                bin_start = bin_boundaries[core[u]]
                node_pos[u] = bin_start
                node_pos[nodes[bin_start]] = pos
                nodes[bin_start], nodes[pos] = nodes[pos], nodes[bin_start]
                bin_boundaries[core[u]] += 1
                core[u] -= 1
                ops += 9  # the bucket swap: six dict/list writes + reads
    result = np.zeros(n, dtype=np.int64)
    for v, c in core.items():
        result[v] = c
    return result, ops


def networkx_style_decompose(
    graph: CSRGraph, cost: CpuCostModel | None = None
) -> DecompositionResult:
    """NetworkX-style run as a :class:`DecompositionResult`.

    ``stats["load_ms"]`` models reading the edge list through pure
    Python (the cost that exceeds an hour for the paper's big graphs)
    and is *not* included in ``simulated_ms``, matching how Table IV
    reports "LD > 1hr" separately from compute time.
    """
    cost = cost or CpuCostModel()
    core, ops = networkx_style_core_numbers(graph)
    # loading: ~40 interpreted ops per edge (parse, split, int(), insert)
    load_ops = 40.0 * graph.num_edges + 10.0 * graph.num_vertices
    kmax = int(core.max()) if core.size else 0
    return DecompositionResult(
        core=core,
        algorithm="networkx",
        simulated_ms=cost.python_ms(ops),
        peak_memory_bytes=int(
            120 * graph.num_vertices + 60 * graph.neighbors.size
        ),  # dict/list object overheads
        rounds=kmax + 1,
        stats={"interpreted_ops": ops, "load_ms": cost.python_ms(load_ops)},
    )
