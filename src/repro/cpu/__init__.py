"""CPU baselines: BZ, NetworkX-style, ParK, PKC/PKC-o and MPM."""

from repro.cpu.bz import bz_core_numbers, bz_decompose, degeneracy_ordering
from repro.cpu.external import (
    SemiExternalConfig,
    decompose_graph_via_disk,
    semi_external_decompose,
)
from repro.cpu.mpm import h_index, mpm_core_numbers, mpm_decompose, mpm_sweep
from repro.cpu.naive import networkx_style_core_numbers, networkx_style_decompose
from repro.cpu.park import park_decompose
from repro.cpu.pkc import pkc_decompose

__all__ = [
    "SemiExternalConfig",
    "decompose_graph_via_disk",
    "semi_external_decompose",
    "bz_core_numbers",
    "bz_decompose",
    "degeneracy_ordering",
    "h_index",
    "mpm_core_numbers",
    "mpm_decompose",
    "mpm_sweep",
    "networkx_style_core_numbers",
    "networkx_style_decompose",
    "park_decompose",
    "pkc_decompose",
]
