"""The Batagelj–Zaversnik (BZ) serial peeling algorithm.

BZ computes the full k-core decomposition in ``O(m)`` time using the
four carefully selected arrays of the original paper (and of ParK's
Section II-A recap): ``vert`` (vertices in ascending current-degree
order), ``pos`` (each vertex's position in ``vert``), ``bin`` (start of
each degree bucket in ``vert``) and ``deg`` (current degrees).  Each
step removes the lowest-degree remaining vertex and moves its neighbors
one bucket down.

This is the reference implementation every other program in the
repository is validated against.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.result import DecompositionResult

__all__ = ["bz_core_numbers", "bz_decompose", "degeneracy_ordering"]


def bz_core_numbers(graph: CSRGraph) -> np.ndarray:
    """Core number of every vertex via bucket peeling (``O(m)``)."""
    core, _ = _bz(graph)
    return core


def degeneracy_ordering(graph: CSRGraph) -> np.ndarray:
    """The smallest-degree-last elimination order BZ peels in.

    Useful on its own: it is the degeneracy ordering used by clique
    enumeration and other pruning applications the paper motivates.
    """
    _, order = _bz(graph)
    return order


def _bz(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    n = graph.num_vertices
    deg = graph.degrees.astype(np.int64).copy()
    if n == 0:
        return deg, np.empty(0, dtype=np.int64)
    max_deg = int(deg.max()) if deg.size else 0

    # Bucket sort vertices by degree: vert/pos/bin of the BZ paper.
    bins = np.zeros(max_deg + 2, dtype=np.int64)
    np.add.at(bins, deg + 1, 1)
    np.cumsum(bins, out=bins)
    vert = np.argsort(deg, kind="stable").astype(np.int64)
    pos = np.empty(n, dtype=np.int64)
    pos[vert] = np.arange(n)

    offsets, neighbors = graph.offsets, graph.neighbors
    core = deg  # updated in place; converges to core numbers
    for i in range(n):
        v = vert[i]
        dv = core[v]
        # Everything before position i is peeled; v is the minimum now.
        for u in neighbors[offsets[v] : offsets[v + 1]]:
            if core[u] > dv:
                du = core[u]
                pu = pos[u]
                # swap u with the first vertex of its bucket
                pw = bins[du]
                w = vert[pw]
                if u != w:
                    vert[pu], vert[pw] = w, u
                    pos[u], pos[w] = pw, pu
                bins[du] += 1
                core[u] = du - 1
    return core, vert


def bz_decompose(graph: CSRGraph) -> DecompositionResult:
    """BZ as a :class:`DecompositionResult`, for the benchmark harness.

    ``simulated_ms`` applies a simple serial cost: one unit per vertex
    extraction plus one per directed edge relaxation, matching the
    algorithm's ``O(n + m)`` bound.
    """
    core = bz_core_numbers(graph)
    n, m2 = graph.num_vertices, graph.neighbors.size
    ops = n + m2
    # Serial CPU cost: ~6 ns per bucket operation on the paper's Xeon.
    simulated_ms = ops * 6e-6
    kmax = int(core.max()) if core.size else 0
    return DecompositionResult(
        core=core,
        algorithm="bz",
        simulated_ms=simulated_ms,
        peak_memory_bytes=8 * (4 * n + m2),
        rounds=kmax + 1,
        stats={"ops": ops},
    )
