"""PKC and PKC-o — lock-reduced multicore peeling (Kabir & Madduri).

PKC keeps ParK's two-phase round structure but gives every thread a
*local* buffer ``B_loc``: the scan phase collects a thread's hits into
its own buffer, and the loop phase lets each thread drain its buffer to
exhaustion independently — no sub-level barriers at all (one
synchronisation per round).  Cross-thread races on shared neighbors are
resolved with the same atomic decrement-and-check the GPU kernel uses.

The paper benchmarks two flavours from the PKC authors' code:

* **PKC-o** ("original") — exactly the above;
* **PKC** — additionally *rebuilds* the working graph once the vast
  majority of vertices have been peeled, so the remaining (often
  thousands of) rounds scan only the few surviving vertices.  This is
  what makes PKC several times faster than PKC-o on high-``k_max`` web
  graphs in Table IV.  (The original code triggers at 98 % processed;
  with our ~1000x smaller analogues the surviving-core fraction is
  relatively larger, so the trigger is 90 % — same mechanism, scaled.)
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph
from repro.memtrace.tracker import MemoryTracker
from repro.multicore.costmodel import CpuCostModel
from repro.multicore.machine import SimulatedMulticore
from repro.result import DecompositionResult

__all__ = ["pkc_decompose"]

#: the modelled working arrays behind ``peak_memory_bytes`` — four
#: 8-byte |V| arrays plus the 8-byte neighbor list (Table V row)
_ARRAYS = ("deg", "core", "alive", "buffer")

#: fraction of vertices that must be peeled before PKC compacts the
#: working graph (the original code uses 0.98 at full scale)
COMPACTION_TRIGGER = 0.90


def pkc_decompose(
    graph: CSRGraph,
    parallel: bool = True,
    compact: bool = True,
    cost: CpuCostModel | None = None,
    profile: bool = False,
    memtrace: bool = False,
) -> DecompositionResult:
    """Run PKC (``compact=True``) or PKC-o (``compact=False``).

    ``parallel=False`` gives the serial rows of Table IV.
    ``profile``/``memtrace`` attach per-epoch bound attribution and
    allocation-lifetime telemetry — observability-only, byte-identical
    results either way.
    """
    cost = cost or CpuCostModel()
    threads = cost.threads if parallel else 1
    tracker = MemoryTracker(worker="cpu") if memtrace else None
    machine = SimulatedMulticore(
        cost, threads=threads, profile=profile, memtracer=tracker
    )

    n = graph.num_vertices
    offsets, neighbors = graph.offsets, graph.neighbors
    if tracker is not None:
        machine.track_alloc("neighbors", 8 * neighbors.size)
        for name in _ARRAYS:
            machine.track_alloc(name, 8 * n)
    deg = graph.degrees.astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    remaining = n
    k = 0
    compacted = False
    scan_domain = np.arange(n)  # vertices the scan phase sweeps

    while remaining > 0:
        # ---- optional graph compaction (PKC only) ----
        if (
            compact
            and not compacted
            and remaining <= (1.0 - COMPACTION_TRIGGER) * n
        ):
            scan_domain = np.flatnonzero(alive)
            live_edges = int(deg[scan_domain].sum())
            machine.spread_ops(n + live_edges)  # one-time rebuild sweep
            if parallel:
                machine.barrier()
            compacted = True
        elif compacted:
            scan_domain = scan_domain[alive[scan_domain]]

        # ---- scan phase into thread-local buffers ----
        machine.spread_ops(scan_domain.size)
        hits = scan_domain[alive[scan_domain] & (deg[scan_domain] <= k)]
        # thread-local buffers: hit at scan position p goes to thread p % T.
        # No barrier here: with local buffers a thread flows straight
        # from its scan into its drain — PKC's whole point is one
        # synchronisation per round.
        local: list[deque[int]] = [deque() for _ in range(threads)]
        for i, v in enumerate(hits):
            local[i % threads].append(int(v))

        # ---- loop phase: each thread drains its own buffer ----
        # Threads run concurrently in reality; emulate that with a
        # round-robin over the queues (one vertex per thread per turn)
        # so propagated vertices are claimed by the thread whose BFS
        # actually reaches them first, not by whoever is emulated first.
        pending = deque(t for t in range(threads) if local[t])
        while pending:
            t = pending.popleft()
            queue = local[t]
            v = queue.popleft()
            if alive[v]:
                alive[v] = False
                core[v] = k
                remaining -= 1
                nbrs = neighbors[offsets[v] : offsets[v + 1]]
                machine.add_ops(t, float(nbrs.size + 4))
                live = nbrs[alive[nbrs] & (deg[nbrs] > k)]
                machine.add_atomics(t, float(live.size))
                deg[live] -= 1
                for u in live[deg[live] <= k]:
                    queue.append(int(u))
            if queue:
                pending.append(t)
        if parallel:
            machine.barrier()  # one synchronisation per round
        k += 1

    prefix = "pkc" if compact else "pkc-o"
    name = (prefix if parallel else f"{prefix}-serial")
    if tracker is not None:
        for label in ("neighbors",) + _ARRAYS:
            machine.track_free(label)
    simulated_ms = machine.finish()
    counters = {"host.rounds": float(k),
                "cpu.compactions": float(compacted)}
    counters.update(machine.counters())
    return DecompositionResult(
        core=core,
        algorithm=name,
        simulated_ms=simulated_ms,
        peak_memory_bytes=8 * (4 * n + graph.neighbors.size),
        rounds=k,
        stats={
            "threads": threads,
            "compacted": compacted,
            "barriers": machine.barriers,
            "total_ops": machine.total_ops,
            "total_atomics": machine.total_atomics,
        },
        counters=counters,
        trace=machine.tracer,
        profile=machine.profile_report(name) if profile else None,
        memtrace=tracker.report(algorithm=name)
        if tracker is not None else None,
    )
