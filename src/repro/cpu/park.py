"""ParK — the pioneering multicore peeling algorithm (Dasari et al.).

Each peel round ``k`` has two phases (Section II-A of the paper):

* **scan** — the degree array is swept in parallel; every thread
  collects its degree-``k`` vertices into one *global* buffer ``B``
  (atomic appends);
* **loop** — ``B`` is processed in *sub-levels*: each sub-level
  processes the current buffer in parallel, appends the next wave of
  degree-``k`` vertices to ``B_new``, and ends with a barrier before
  ``B_new`` becomes ``B``.

The sub-level barriers are ParK's scalability weakness — PKC removes
them — and the full-array scan every round is why serial ParK loses
badly to BZ on high-``k_max`` graphs (Table IV, ``indochina-2004``).

Execution here is vectorised and deterministic; thread attribution
feeds the :class:`~repro.multicore.machine.SimulatedMulticore` that
converts per-thread work and barrier counts into simulated time.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.memtrace.tracker import MemoryTracker
from repro.multicore.costmodel import CpuCostModel
from repro.multicore.machine import SimulatedMulticore
from repro.result import DecompositionResult

__all__ = ["park_decompose"]

#: the modelled working arrays behind ``peak_memory_bytes`` — four
#: 8-byte |V| arrays plus the 8-byte neighbor list (Table V row)
_ARRAYS = ("deg", "core", "alive", "buffer")


def park_decompose(
    graph: CSRGraph,
    parallel: bool = True,
    cost: CpuCostModel | None = None,
    profile: bool = False,
    memtrace: bool = False,
) -> DecompositionResult:
    """Run ParK; ``parallel=False`` gives the serial variant of Table IV.

    ``profile``/``memtrace`` attach per-epoch bound attribution and
    allocation-lifetime telemetry — observability-only, byte-identical
    results either way.
    """
    cost = cost or CpuCostModel()
    threads = cost.threads if parallel else 1
    tracker = MemoryTracker(worker="cpu") if memtrace else None
    machine = SimulatedMulticore(
        cost, threads=threads, profile=profile, memtracer=tracker
    )

    n = graph.num_vertices
    offsets, neighbors = graph.offsets, graph.neighbors
    if tracker is not None:
        machine.track_alloc("neighbors", 8 * neighbors.size)
        for name in _ARRAYS:
            machine.track_alloc(name, 8 * n)
    deg = graph.degrees.astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    remaining = n
    k = 0
    sub_levels = 0
    while remaining > 0:
        # ---- scan phase: full sweep of the degree array ----
        machine.spread_ops(n)  # each thread checks n / T vertices
        buffer = np.flatnonzero(alive & (deg <= k))
        if buffer.size:
            # atomic append of each hit into the global buffer B
            hit_threads = np.bincount(buffer % threads, minlength=threads)
            for t in np.flatnonzero(hit_threads):
                machine.add_atomics(int(t), int(hit_threads[t]))
        if parallel:
            machine.barrier()

        # ---- loop phase: sub-level waves over the global buffer ----
        while buffer.size:
            sub_levels += 1
            core[buffer] = k
            alive[buffer] = False
            remaining -= buffer.size
            # thread i % T processes buffer[i]
            owner = np.arange(buffer.size) % threads
            lengths = offsets[buffer + 1] - offsets[buffer]
            per_thread = np.bincount(owner, weights=lengths + 4, minlength=threads)
            for t in np.flatnonzero(per_thread):
                machine.add_ops(int(t), float(per_thread[t]))
            total = int(lengths.sum())
            if total == 0:
                buffer = np.empty(0, dtype=np.int64)
            else:
                starts = offsets[buffer]
                local = np.arange(total) - np.repeat(
                    np.cumsum(lengths) - lengths, lengths
                )
                touched = neighbors[np.repeat(starts, lengths) + local]
                # each decrement of a live neighbor is an atomic
                # fetch-and-sub, attributed to the source's owner thread
                edge_owner = np.repeat(owner, lengths)
                live_edge = alive[touched]
                atomic_by_thread = np.bincount(
                    edge_owner[live_edge], minlength=threads
                )
                for t in np.flatnonzero(atomic_by_thread):
                    machine.add_atomics(int(t), int(atomic_by_thread[t]))
                unique, counts = np.unique(touched, return_counts=True)
                live = alive[unique]
                affected = unique[live]
                deg[affected] -= counts[live]
                buffer = affected[deg[affected] <= k]
            if parallel:
                machine.barrier()  # sub-level synchronisation
        k += 1

    name = "park" if parallel else "park-serial"
    if tracker is not None:
        for label in ("neighbors",) + _ARRAYS:
            machine.track_free(label)
    simulated_ms = machine.finish()
    counters = {"host.rounds": float(k),
                "cpu.sub_levels": float(sub_levels)}
    counters.update(machine.counters())
    return DecompositionResult(
        core=core,
        algorithm=name,
        simulated_ms=simulated_ms,
        peak_memory_bytes=8 * (4 * n + graph.neighbors.size),
        rounds=k,
        stats={
            "threads": threads,
            "sub_levels": sub_levels,
            "barriers": machine.barriers,
            "total_ops": machine.total_ops,
            "total_atomics": machine.total_atomics,
        },
        counters=counters,
        trace=machine.tracer,
        profile=machine.profile_report(name) if profile else None,
        memtrace=tracker.report(algorithm=name)
        if tracker is not None else None,
    )
