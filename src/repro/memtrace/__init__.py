"""Memory telemetry for the simulated GPU stack.

``repro.memtrace`` gives device memory the same first-class
observability that simulated time got from :mod:`repro.profile`: every
allocation's lifetime, per-round high-water marks, and — the headline —
an exact attribution breakdown of ``GlobalMemory.peak``, so the
Table V figures are explainable per variant and per system emulation
instead of being one opaque scalar.

Enable it anywhere in the stack:

* ``Device(memtrace=True)`` — attach a
  :class:`~repro.memtrace.tracker.MemoryTracker` to one device;
* ``gpu_peel(graph, memtrace=True)`` / ``GpuPeelOptions(memtrace=True)``
  / ``KCoreDecomposer(mode="simulate", memtrace=True)`` — the report
  lands on ``result.memtrace``;
* the system emulations (``gunrock_decompose(memtrace=True)``, ...)
  and ``multi_gpu_peel(memtrace=True)`` (one worker section per GPU);
* CLI ``--memtrace [FILE]`` for any algorithm in
  ``repro.api.MEMTRACEABLE``.

Like every observability layer here, memtrace never perturbs the run:
simulated time, counters, core numbers, and the peak itself are
byte-identical with tracking on or off.  See the "Memory telemetry"
section of ``docs/OBSERVABILITY.md``.
"""

from repro.memtrace.report import (
    SCHEMA_VERSION,
    MemtraceReport,
    WorkerMemtrace,
    validate_memtrace,
    validate_memtrace_file,
)
from repro.memtrace.tracker import (
    AllocationRecord,
    MemoryTracker,
    PeakSnapshot,
    SharedFootprint,
)

__all__ = [
    "SCHEMA_VERSION",
    "AllocationRecord",
    "MemoryTracker",
    "MemtraceReport",
    "PeakSnapshot",
    "SharedFootprint",
    "WorkerMemtrace",
    "validate_memtrace",
    "validate_memtrace_file",
]
