"""The memory tracker: allocation lifetimes and peak attribution.

A :class:`MemoryTracker` is attached to a
:class:`~repro.gpusim.device.Device` (``Device(memtrace=True)``) and
receives a hook call for every global-memory transition the device
performs: ``malloc``, ``free``, invalid frees, read-backs of freed
arrays, and per-block shared-memory allocations inside kernels.  From
those it maintains:

* the **full lifetime** of every allocation — name, bytes, alloc/free
  timestamps on the simulated-millisecond timeline, the owning scope
  (``"host"`` for host-program mallocs, the kernel or charge label for
  allocations made while a launch is in flight), and the peel round the
  host annotated via :meth:`set_round`;
* **per-round high-water marks** of ``in_use``;
* the **peak attribution snapshot**: whenever ``in_use`` sets a new
  high-water mark, the exact set of live arrays (plus the ``(context)``
  pseudo-allocation for the CUDA-context overhead the device books at
  construction) is captured, so the Table V peak is explainable as a
  sum of named arrays rather than an opaque scalar;
* **findings** for the three memory detectors of
  :data:`repro.sanitize.report.DETECTORS` — ``memory-leak`` (live at
  :meth:`finish`), ``double-free`` (an
  :class:`~repro.errors.InvalidFreeError` was raised), and
  ``use-after-free`` (a freed array was read back).

Tracking is observability-only: every hook is bookkeeping over values
the simulator computes anyway, so a traced run's simulated time,
counters, core numbers, and ``GlobalMemory.peak`` are byte-identical
to an untraced one (asserted by ``tests/properties/test_memtrace.py``).
The tracker's own ``peak.bytes`` mirrors ``GlobalMemory.peak``
*exactly* — both start at the context overhead and add the same
``device_bytes`` on the same events — which is what lets the report
validator demand that the attribution breakdown sums to the device's
reported peak to the byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sanitize.report import SanitizerFinding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memtrace.report import MemtraceReport

__all__ = [
    "AllocationRecord",
    "SharedFootprint",
    "PeakSnapshot",
    "MemoryTracker",
]

#: scope recorded for allocations made outside any kernel launch
HOST_SCOPE = "host"

#: breakdown entry name for the device's CUDA-context overhead
CONTEXT_NAME = "(context)"


@dataclass(frozen=True)
class AllocationRecord:
    """One allocation's full lifetime (timestamps in simulated ms)."""

    name: str
    bytes: int
    alloc_ms: float
    #: ``None`` while the allocation is still live (a leak when the
    #: run has finished)
    free_ms: Optional[float]
    #: ``"host"``, or the kernel / charge label active at alloc time
    scope: str
    #: peel round the host had annotated at alloc time, if any
    round_index: Optional[int]
    #: allocation sequence number on the device (0-based)
    index: int

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "bytes": self.bytes,
            "alloc_ms": self.alloc_ms,
            "free_ms": self.free_ms,
            "scope": self.scope,
            "round": self.round_index,
            "index": self.index,
        }


@dataclass(frozen=True)
class SharedFootprint:
    """Aggregated per-block shared-memory allocations of one kernel.

    One record per ``(kernel, name)`` pair: ``blocks`` blocks each
    allocated ``bytes_per_block`` (shared memory is per-block, so the
    footprint never aggregates across the grid).
    """

    kernel: str
    name: str
    bytes_per_block: int
    blocks: int

    def to_json(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "name": self.name,
            "bytes_per_block": self.bytes_per_block,
            "blocks": self.blocks,
        }


@dataclass(frozen=True)
class PeakSnapshot:
    """The attribution breakdown captured at the peak high-water mark.

    ``breakdown`` lists every live allocation (name, bytes) at the
    moment ``in_use`` last set a new maximum, including the
    ``(context)`` pseudo-entry; the byte values sum *exactly* to
    ``bytes`` (which mirrors ``GlobalMemory.peak``).
    """

    bytes: int
    ts_ms: float
    breakdown: Tuple[Tuple[str, int], ...]

    def shares(self) -> Dict[str, float]:
        """Breakdown as fractional shares of the peak."""
        if not self.bytes:
            return {name: 0.0 for name, _ in self.breakdown}
        return {name: b / self.bytes for name, b in self.breakdown}

    def to_json(self) -> Dict[str, object]:
        total = self.bytes
        return {
            "bytes": self.bytes,
            "ts_ms": self.ts_ms,
            "breakdown": [
                {
                    "name": name,
                    "bytes": b,
                    "share": (b / total) if total else 0.0,
                }
                for name, b in self.breakdown
            ],
        }


@dataclass
class _LiveAllocation:
    """Mutable in-flight record; frozen into an AllocationRecord later."""

    name: str
    bytes: int
    alloc_ms: float
    scope: str
    round_index: Optional[int]
    index: int

    def close(self, free_ms: Optional[float]) -> AllocationRecord:
        return AllocationRecord(
            name=self.name,
            bytes=self.bytes,
            alloc_ms=self.alloc_ms,
            free_ms=free_ms,
            scope=self.scope,
            round_index=self.round_index,
            index=self.index,
        )


@dataclass
class MemoryTracker:
    """Collects one device's memory telemetry; see the module docstring.

    ``worker`` names the device in multi-GPU runs (``"gpu0"`` ...);
    :func:`repro.core.multigpu.multi_gpu_peel` builds one tracker per
    worker so the merged report carries per-worker provenance.
    """

    worker: str = "gpu0"
    labels: Dict[str, str] = field(default_factory=dict)
    findings: List[SanitizerFinding] = field(default_factory=list)

    base_bytes: int = 0
    in_use_bytes: int = 0
    n_allocs: int = 0
    n_frees: int = 0

    _live: Dict[str, _LiveAllocation] = field(default_factory=dict)
    _closed: List[AllocationRecord] = field(default_factory=list)
    _peak: Optional[PeakSnapshot] = None
    _round: Optional[int] = None
    _round_high: Dict[int, int] = field(default_factory=dict)
    _scope: Optional[str] = None
    _shared: Dict[Tuple[str, str], List[int]] = field(default_factory=dict)
    _finished: bool = False

    # -- device wiring -------------------------------------------------------

    def attach(self, base_bytes: int, ts_ms: float = 0.0) -> None:
        """Register the device's base usage (the CUDA-context overhead).

        Called once by the owning device before any allocation; seeds
        ``in_use`` and the peak snapshot so the tracker's arithmetic
        mirrors :class:`~repro.gpusim.memory.GlobalMemory` exactly.
        """
        self.base_bytes = int(base_bytes)
        self.in_use_bytes = int(base_bytes)
        self._snapshot_peak(ts_ms)

    # -- host annotations ----------------------------------------------------

    def annotate(self, **labels: str) -> None:
        """Attach run-level labels (``variant=...``, ``algorithm=...``)."""
        self.labels.update(labels)

    def set_round(self, k: Optional[int]) -> None:
        """Stamp subsequent allocations with peel round ``k`` (None clears).

        Also opens the round's high-water entry at the current
        ``in_use``, so rounds that allocate nothing still report their
        (flat) footprint.
        """
        self._round = k
        if k is not None:
            high = self._round_high.get(k, 0)
            self._round_high[k] = max(high, self.in_use_bytes)

    def set_scope(self, label: Optional[str]) -> None:
        """Name the owning kernel/charge for subsequent allocations."""
        self._scope = label

    # -- transition hooks (called by the Device) -----------------------------

    def on_malloc(self, name: str, nbytes: int, ts_ms: float) -> None:
        """A ``malloc`` succeeded: open the lifetime, update watermarks."""
        self._live[name] = _LiveAllocation(
            name=name,
            bytes=int(nbytes),
            alloc_ms=ts_ms,
            scope=self._scope or HOST_SCOPE,
            round_index=self._round,
            index=self.n_allocs,
        )
        self.n_allocs += 1
        self.in_use_bytes += int(nbytes)
        if self._round is not None:
            high = self._round_high.get(self._round, 0)
            self._round_high[self._round] = max(high, self.in_use_bytes)
        if self._peak is None or self.in_use_bytes > self._peak.bytes:
            self._snapshot_peak(ts_ms)

    def on_free(self, name: str, ts_ms: float) -> None:
        """A ``free`` succeeded: close the lifetime."""
        live = self._live.pop(name, None)
        if live is not None:
            self._closed.append(live.close(ts_ms))
            self.in_use_bytes -= live.bytes
        self.n_frees += 1

    def on_invalid_free(self, name: str, ts_ms: float, kind: str) -> None:
        """An :class:`~repro.errors.InvalidFreeError` was raised."""
        what = (
            "freed again after an earlier free"
            if kind == "double"
            else "freed but was never allocated"
        )
        self.findings.append(
            SanitizerFinding(
                detector="double-free",
                severity="error",
                kernel=self._scope or HOST_SCOPE,
                message=(
                    f"device array {name!r} {what} "
                    f"at {ts_ms:.3f} ms"
                ),
            )
        )

    def on_use_after_free(self, name: str, ts_ms: float) -> None:
        """A freed :class:`DeviceArray` was read back."""
        self.findings.append(
            SanitizerFinding(
                detector="use-after-free",
                severity="error",
                kernel=self._scope or HOST_SCOPE,
                message=(
                    f"read-back of device array {name!r} after free "
                    f"at {ts_ms:.3f} ms (stale bytes returned)"
                ),
            )
        )

    def on_shared_alloc(self, block_idx: int, name: str, nbytes: int) -> None:
        """A block allocated shared memory inside the current kernel."""
        key = (self._scope or "kernel", name)
        entry = self._shared.setdefault(key, [0, 0])
        entry[0] = max(entry[0], int(nbytes))
        entry[1] += 1

    def finish(self, ts_ms: float) -> None:
        """End of run: diagnose still-live allocations as leaks.

        Idempotent — a second call is a no-op, so hosts that both free
        and finish never double-report.
        """
        if self._finished:
            return
        self._finished = True
        for live in self._live.values():
            self.findings.append(
                SanitizerFinding(
                    detector="memory-leak",
                    severity="warning",
                    kernel=live.scope,
                    message=(
                        f"device array {live.name!r} ({live.bytes} B, "
                        f"allocated at {live.alloc_ms:.3f} ms) still "
                        f"live at end of run ({ts_ms:.3f} ms)"
                    ),
                )
            )

    # -- views ----------------------------------------------------------------

    @property
    def peak(self) -> PeakSnapshot:
        """The current peak snapshot (mirrors ``GlobalMemory.peak``)."""
        if self._peak is None:
            return PeakSnapshot(bytes=0, ts_ms=0.0, breakdown=())
        return self._peak

    def allocations(self) -> Tuple[AllocationRecord, ...]:
        """Every lifetime, closed and still-live, in allocation order."""
        records = list(self._closed) + [
            live.close(None) for live in self._live.values()
        ]
        records.sort(key=lambda r: r.index)
        return tuple(records)

    def rounds(self) -> Tuple[Tuple[int, int], ...]:
        """Per-round high-water marks as ``(round, bytes)`` pairs."""
        return tuple(sorted(self._round_high.items()))

    def shared_footprints(self) -> Tuple[SharedFootprint, ...]:
        """Aggregated shared-memory footprints per (kernel, name)."""
        return tuple(
            SharedFootprint(
                kernel=kernel,
                name=name,
                bytes_per_block=entry[0],
                blocks=entry[1],
            )
            for (kernel, name), entry in sorted(self._shared.items())
        )

    def report(self, algorithm: Optional[str] = None) -> "MemtraceReport":
        """Assemble this tracker into a single-worker report."""
        from repro.memtrace.report import MemtraceReport

        return MemtraceReport.from_trackers(
            [self],
            algorithm=algorithm or self.labels.get("algorithm"),
            variant=self.labels.get("variant"),
            dataset=self.labels.get("dataset"),
        )

    # -- internals -------------------------------------------------------------

    def _snapshot_peak(self, ts_ms: float) -> None:
        breakdown: List[Tuple[str, int]] = []
        if self.base_bytes:
            breakdown.append((CONTEXT_NAME, self.base_bytes))
        breakdown.extend(
            (live.name, live.bytes) for live in self._live.values()
        )
        self._peak = PeakSnapshot(
            bytes=self.in_use_bytes,
            ts_ms=ts_ms,
            breakdown=tuple(breakdown),
        )
