"""The ``repro.memtrace/v1`` report: schema, rendering, validation.

A :class:`MemtraceReport` wraps the telemetry of one run's
:class:`~repro.memtrace.tracker.MemoryTracker`\\ (s) — one *worker*
section per device, so multi-GPU runs keep per-worker provenance — and
is what ``gpu_peel(memtrace=True)`` attaches to ``result.memtrace``.

``to_json()`` emits the ``repro.memtrace/v1`` record:

.. code-block:: json

    {
      "schema": "repro.memtrace/v1",
      "algorithm": "gpu-ours", "variant": "ours", "dataset": null,
      "peak_bytes": 901120,
      "workers": [
        {
          "worker": "gpu0",
          "base_bytes": 262144,
          "peak": {"bytes": 901120, "ts_ms": 0.0,
                   "breakdown": [{"name": "(context)", "bytes": 262144,
                                  "share": 0.29}, ...]},
          "rounds": [{"round": 0, "high_water_bytes": 901120}, ...],
          "allocations": [{"name": "offsets", "bytes": 3204,
                           "alloc_ms": 0.0, "free_ms": 4.1,
                           "scope": "host", "round": null, "index": 0},
                          ...],
          "shared": [{"kernel": "loop_kernel", "name": "buf",
                      "bytes_per_block": 128, "blocks": 4}],
          "allocs": 7, "frees": 7,
          "findings": []
        }
      ]
    }

:func:`validate_memtrace` checks a parsed record against the schema
*and* its arithmetic invariants — above all that every worker's
breakdown sums **exactly** (integer bytes, no tolerance) to its peak,
which is how ``result.memtrace`` is guaranteed to explain
``device.peak_memory_bytes`` rather than approximate it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.memtrace.tracker import (
    CONTEXT_NAME,
    AllocationRecord,
    MemoryTracker,
    PeakSnapshot,
    SharedFootprint,
)
from repro.sanitize.report import SanitizerFinding

__all__ = [
    "SCHEMA_VERSION",
    "WorkerMemtrace",
    "MemtraceReport",
    "validate_memtrace",
    "validate_memtrace_file",
]

SCHEMA_VERSION = "repro.memtrace/v1"

#: detectors a memtrace finding may carry
_MEMTRACE_DETECTORS = ("memory-leak", "double-free", "use-after-free")

#: absolute slack for the share-sum check (shares are derived floats;
#: the byte sums themselves are checked exactly)
_SHARE_TOL = 1e-9


@dataclass(frozen=True)
class WorkerMemtrace:
    """One device's memory telemetry within a report."""

    worker: str
    base_bytes: int
    peak: PeakSnapshot
    rounds: Tuple[Tuple[int, int], ...]
    allocations: Tuple[AllocationRecord, ...]
    shared: Tuple[SharedFootprint, ...]
    allocs: int
    frees: int
    findings: Tuple[SanitizerFinding, ...]

    def breakdown(self) -> Dict[str, int]:
        """The peak attribution as a ``name -> bytes`` mapping."""
        return dict(self.peak.breakdown)

    def to_json(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "base_bytes": self.base_bytes,
            "peak": self.peak.to_json(),
            "rounds": [
                {"round": k, "high_water_bytes": high}
                for k, high in self.rounds
            ],
            "allocations": [a.to_json() for a in self.allocations],
            "shared": [s.to_json() for s in self.shared],
            "allocs": self.allocs,
            "frees": self.frees,
            "findings": [
                {
                    "detector": f.detector,
                    "severity": f.severity,
                    "kernel": f.kernel,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }


@dataclass(frozen=True)
class MemtraceReport:
    """The full memory telemetry of one run; see the module docstring."""

    algorithm: Optional[str]
    variant: Optional[str]
    dataset: Optional[str]
    workers: Tuple[WorkerMemtrace, ...]

    @classmethod
    def from_trackers(
        cls,
        trackers: Sequence[MemoryTracker],
        algorithm: Optional[str] = None,
        variant: Optional[str] = None,
        dataset: Optional[str] = None,
    ) -> "MemtraceReport":
        """Fold one tracker per device into a report (multi-GPU merge)."""
        labels: Dict[str, str] = {}
        for tracker in trackers:
            labels.update(tracker.labels)
        workers = tuple(
            WorkerMemtrace(
                worker=t.worker,
                base_bytes=t.base_bytes,
                peak=t.peak,
                rounds=t.rounds(),
                allocations=t.allocations(),
                shared=t.shared_footprints(),
                allocs=t.n_allocs,
                frees=t.n_frees,
                findings=tuple(t.findings),
            )
            for t in trackers
        )
        return cls(
            algorithm=algorithm or labels.get("algorithm"),
            variant=variant or labels.get("variant"),
            dataset=dataset or labels.get("dataset"),
            workers=workers,
        )

    # -- views ----------------------------------------------------------------

    @property
    def peak_bytes(self) -> int:
        """The busiest single worker's peak (the Table V figure)."""
        return max((w.peak.bytes for w in self.workers), default=0)

    @property
    def peak_worker(self) -> Optional[WorkerMemtrace]:
        """The worker whose peak is the report's peak."""
        if not self.workers:
            return None
        return max(self.workers, key=lambda w: w.peak.bytes)

    def breakdown(self) -> Dict[str, int]:
        """Attribution of the busiest worker's peak (``name -> bytes``)."""
        worker = self.peak_worker
        return worker.breakdown() if worker is not None else {}

    @property
    def findings(self) -> Tuple[SanitizerFinding, ...]:
        """Findings across every worker."""
        return tuple(f for w in self.workers for f in w.findings)

    @property
    def clean(self) -> bool:
        """True when no memory detector fired."""
        return not self.findings

    @property
    def errors(self) -> List[SanitizerFinding]:
        """Findings with severity ``error``."""
        return [f for f in self.findings if f.severity == "error"]

    # -- export ---------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The ``repro.memtrace/v1`` record."""
        return {
            "schema": SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "variant": self.variant,
            "dataset": self.dataset,
            "peak_bytes": self.peak_bytes,
            "workers": [w.to_json() for w in self.workers],
        }

    def write(self, path: "str | Path") -> None:
        """Serialise :meth:`to_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1)

    # -- human-readable timeline ----------------------------------------------

    def render(self) -> str:
        """The ``--memtrace`` console report: timeline + attribution."""
        label = self.algorithm or "run"
        if self.dataset:
            label += f" on {self.dataset}"
        lines = [
            f"Memory telemetry: {label}",
            "=" * max(24, len(label) + 18),
        ]
        mib = 1024.0 * 1024.0
        for worker in self.workers:
            peak = worker.peak
            lines.append(
                f"{worker.worker}: peak {peak.bytes / mib:.2f} MB "
                f"({peak.bytes} B) at {peak.ts_ms:.3f} ms — "
                f"{worker.allocs} alloc(s), {worker.frees} free(s)"
            )
            shares = peak.shares()
            lines.append(
                f"  {'array':<22} {'bytes':>12} {'share':>7}  "
                f"{'scope':<14} {'lifetime (ms)':<18}"
            )
            lifetimes = {a.name: a for a in worker.allocations}
            for name, nbytes in peak.breakdown:
                record = lifetimes.get(name)
                if name == CONTEXT_NAME or record is None:
                    span = "whole run"
                    scope = "-"
                else:
                    end = (
                        f"{record.free_ms:.3f}"
                        if record.free_ms is not None
                        else "live"
                    )
                    span = f"{record.alloc_ms:.3f} – {end}"
                    scope = record.scope
                lines.append(
                    f"  {name:<22} {nbytes:>12} "
                    f"{100.0 * shares.get(name, 0.0):>6.1f}%  "
                    f"{scope:<14} {span:<18}"
                )
            if worker.rounds:
                highs = [high for _, high in worker.rounds]
                lines.append(
                    f"  rounds: {len(worker.rounds)}, high-water "
                    f"{min(highs)} – {max(highs)} B"
                )
            for footprint in worker.shared:
                lines.append(
                    f"  shared: {footprint.kernel}/{footprint.name} "
                    f"{footprint.bytes_per_block} B/block x "
                    f"{footprint.blocks} block(s)"
                )
        if self.clean:
            lines.append("findings: clean")
        else:
            lines.append(f"findings: {len(self.findings)}")
            for finding in self.findings:
                lines.append(f"  {finding}")
        return "\n".join(lines)


# -- validation ---------------------------------------------------------------


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_worker(entry: Any, where: str, errors: List[str]) -> None:
    if not isinstance(entry, dict):
        errors.append(f"{where}: not an object")
        return
    if not isinstance(entry.get("worker"), str) or not entry.get("worker"):
        errors.append(f"{where}: missing or empty 'worker'")
    base = entry.get("base_bytes")
    if not _is_int(base) or base < 0:
        errors.append(f"{where}: 'base_bytes' must be a non-negative int")
        base = 0
    peak = entry.get("peak")
    if not isinstance(peak, dict):
        errors.append(f"{where}: 'peak' must be an object")
        return
    peak_bytes = peak.get("bytes")
    if not _is_int(peak_bytes) or peak_bytes < 0:
        errors.append(f"{where}: peak.bytes must be a non-negative int")
        return
    if not _is_number(peak.get("ts_ms")) or float(peak["ts_ms"]) < 0.0:
        errors.append(f"{where}: peak.ts_ms must be a non-negative number")
    if peak_bytes < base:
        errors.append(
            f"{where}: peak.bytes ({peak_bytes}) below base_bytes ({base})"
        )
    breakdown = peak.get("breakdown")
    if not isinstance(breakdown, list):
        errors.append(f"{where}: peak.breakdown must be a list")
        return
    total = 0
    share_sum = 0.0
    names: List[str] = []
    for i, item in enumerate(breakdown):
        if not isinstance(item, dict):
            errors.append(f"{where}: peak.breakdown[{i}] not an object")
            return
        name = item.get("name")
        nbytes = item.get("bytes")
        share = item.get("share")
        if not isinstance(name, str) or not name:
            errors.append(
                f"{where}: peak.breakdown[{i}].name must be a string"
            )
            continue
        if not _is_int(nbytes) or nbytes < 0:
            errors.append(
                f"{where}: peak.breakdown[{i}].bytes must be a "
                "non-negative int"
            )
            continue
        if not _is_number(share):
            errors.append(
                f"{where}: peak.breakdown[{i}].share must be a number"
            )
            continue
        if peak_bytes and abs(share - nbytes / peak_bytes) > _SHARE_TOL:
            errors.append(
                f"{where}: peak.breakdown[{i}].share ({share}) != "
                f"bytes/peak ({nbytes / peak_bytes})"
            )
        names.append(name)
        total += nbytes
        share_sum += float(share)
    if len(set(names)) != len(names):
        errors.append(f"{where}: duplicate names in peak.breakdown")
    # the headline invariant: attribution sums EXACTLY to the peak
    if total != peak_bytes:
        errors.append(
            f"{where}: breakdown sums to {total} B, not the peak "
            f"({peak_bytes} B) — attribution must be exact"
        )
    if peak_bytes and abs(share_sum - 1.0) > 1e-6:
        errors.append(
            f"{where}: breakdown shares sum to {share_sum}, not 1"
        )
    if base and CONTEXT_NAME not in names:
        errors.append(
            f"{where}: base_bytes > 0 but no {CONTEXT_NAME!r} entry in "
            "the breakdown"
        )
    # allocation lifetimes
    allocations = entry.get("allocations")
    if not isinstance(allocations, list):
        errors.append(f"{where}: 'allocations' must be a list")
        allocations = []
    alloc_names: Dict[str, Dict[str, Any]] = {}
    for i, alloc in enumerate(allocations):
        if not isinstance(alloc, dict):
            errors.append(f"{where}: allocations[{i}] not an object")
            continue
        if not isinstance(alloc.get("name"), str) or not alloc.get("name"):
            errors.append(f"{where}: allocations[{i}].name must be a string")
            continue
        if not _is_int(alloc.get("bytes")) or alloc["bytes"] < 0:
            errors.append(
                f"{where}: allocations[{i}].bytes must be a "
                "non-negative int"
            )
            continue
        if not _is_number(alloc.get("alloc_ms")) or alloc["alloc_ms"] < 0.0:
            errors.append(
                f"{where}: allocations[{i}].alloc_ms must be a "
                "non-negative number"
            )
            continue
        free_ms = alloc.get("free_ms")
        if free_ms is not None:
            if not _is_number(free_ms):
                errors.append(
                    f"{where}: allocations[{i}].free_ms must be a "
                    "number or null"
                )
            elif float(free_ms) < float(alloc["alloc_ms"]):
                errors.append(
                    f"{where}: allocations[{i}] freed ({free_ms}) before "
                    f"allocated ({alloc['alloc_ms']})"
                )
        if not isinstance(alloc.get("scope"), str) or not alloc.get("scope"):
            errors.append(
                f"{where}: allocations[{i}].scope must be a string"
            )
        alloc_names[alloc["name"]] = alloc
    # every non-context breakdown entry must be a recorded allocation
    # that was live at the peak timestamp, with matching bytes
    peak_ts = peak.get("ts_ms")
    for item in breakdown:
        if not isinstance(item, dict):
            continue
        name = item.get("name")
        if name == CONTEXT_NAME or not isinstance(name, str):
            continue
        alloc = alloc_names.get(name)
        if alloc is None:
            errors.append(
                f"{where}: breakdown entry {name!r} has no allocation "
                "record"
            )
            continue
        if alloc.get("bytes") != item.get("bytes"):
            errors.append(
                f"{where}: breakdown entry {name!r} ({item.get('bytes')} B) "
                f"disagrees with its allocation record "
                f"({alloc.get('bytes')} B)"
            )
        if _is_number(peak_ts) and _is_number(alloc.get("alloc_ms")):
            if float(alloc["alloc_ms"]) > float(peak_ts):
                errors.append(
                    f"{where}: breakdown entry {name!r} allocated after "
                    "the peak"
                )
            free_ms = alloc.get("free_ms")
            if _is_number(free_ms) and float(free_ms) < float(peak_ts):
                errors.append(
                    f"{where}: breakdown entry {name!r} freed before "
                    "the peak"
                )
    # per-round high-water marks
    rounds = entry.get("rounds")
    if not isinstance(rounds, list):
        errors.append(f"{where}: 'rounds' must be a list")
        rounds = []
    for i, item in enumerate(rounds):
        if not isinstance(item, dict) or not _is_int(item.get("round")):
            errors.append(f"{where}: rounds[{i}] malformed")
            continue
        high = item.get("high_water_bytes")
        if not _is_int(high) or high < 0:
            errors.append(
                f"{where}: rounds[{i}].high_water_bytes must be a "
                "non-negative int"
            )
        elif high > peak_bytes:
            errors.append(
                f"{where}: rounds[{i}] high-water ({high}) above the "
                f"peak ({peak_bytes})"
            )
    for key in ("allocs", "frees"):
        if not _is_int(entry.get(key)) or entry[key] < 0:
            errors.append(f"{where}: {key!r} must be a non-negative int")
    findings = entry.get("findings")
    if not isinstance(findings, list):
        errors.append(f"{where}: 'findings' must be a list")
        findings = []
    for i, finding in enumerate(findings):
        if (
            not isinstance(finding, dict)
            or finding.get("detector") not in _MEMTRACE_DETECTORS
        ):
            errors.append(
                f"{where}: findings[{i}].detector must be one of "
                f"{_MEMTRACE_DETECTORS}"
            )


def validate_memtrace(record: Any) -> List[str]:
    """Check a parsed ``repro.memtrace/v1`` record; return problems."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    if record.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema must be {SCHEMA_VERSION!r}, got {record.get('schema')!r}"
        )
    workers = record.get("workers")
    if not isinstance(workers, list):
        return errors + ["'workers' must be a list"]
    for i, entry in enumerate(workers):
        _check_worker(entry, f"workers[{i}]", errors)
    peak_bytes = record.get("peak_bytes")
    if not _is_int(peak_bytes) or peak_bytes < 0:
        errors.append("'peak_bytes' must be a non-negative int")
    else:
        worker_peaks = [
            w["peak"]["bytes"]
            for w in workers
            if isinstance(w, dict)
            and isinstance(w.get("peak"), dict)
            and _is_int(w["peak"].get("bytes"))
        ]
        expected = max(worker_peaks, default=0)
        if worker_peaks and peak_bytes != expected:
            errors.append(
                f"peak_bytes ({peak_bytes}) != max worker peak "
                f"({expected})"
            )
    names = [
        w.get("worker") for w in workers if isinstance(w, dict)
    ]
    if len(set(names)) != len(names):
        errors.append("duplicate worker names")
    return errors


def validate_memtrace_file(path: "str | Path") -> List[str]:
    """Validate one exported memtrace JSON file."""
    path = Path(path)
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    return [f"{path.name}: {p}" for p in validate_memtrace(record)]
