#!/usr/bin/env python3
"""Streaming core maintenance on a dynamic graph.

The alternative to the paper's "decompose every snapshot" workflow
(Section II-C): maintain core numbers *incrementally* as edges arrive
and depart.  This example streams edge updates into a social network
and compares the incremental maintainer against full recomputation —
both in agreement (always) and in touched work (the point of the
traversal algorithm: updates stay local).

Also demonstrates the multi-GPU partitioned decomposition of the same
graph (the paper's Section VII future-work sketch).

Run:  python examples/dynamic_maintenance.py
"""

import numpy as np

from repro.analysis.maintenance import DynamicCoreMaintainer
from repro.core.multigpu import multi_gpu_peel
from repro.cpu.bz import bz_core_numbers
from repro.graph import generators as gen


def main() -> None:
    graph = gen.barabasi_albert(2_000, attach=4, seed=17)
    maintainer = DynamicCoreMaintainer(graph)
    print(f"Base graph: {graph}; k_max = {maintainer.core_numbers().max()}")

    # -- stream 200 random updates ---------------------------------------
    rng = np.random.default_rng(4)
    existing = list(graph.edges())
    inserts = deletes = 0
    touched = 0
    for _ in range(200):
        if existing and rng.random() < 0.4:
            u, v = existing.pop(int(rng.integers(0, len(existing))))
            if maintainer.has_edge(u, v):
                changed = maintainer.remove_edge(u, v)
                deletes += 1
                touched += len(changed)
            continue
        u, v = map(int, rng.integers(0, graph.num_vertices, size=2))
        if u == v:
            continue
        changed = maintainer.insert_edge(u, v)
        inserts += 1
        touched += len(changed)
    print(f"\nStreamed {inserts} insertions and {deletes} deletions; "
          f"only {touched} core numbers changed in total "
          f"(locality is the whole point)")

    # -- verify against a full recomputation ------------------------------
    snapshot = maintainer.to_graph()
    fresh = bz_core_numbers(snapshot)
    assert np.array_equal(maintainer.core_numbers(), fresh)
    print("Incremental result verified against a full BZ recomputation.")

    # -- the multi-GPU future-work extension on the final graph ----------
    for devices in (1, 2, 4):
        result = multi_gpu_peel(snapshot, num_devices=devices)
        assert np.array_equal(result.core, fresh)
        print(f"  {devices} simulated GPU(s): {result.simulated_ms:.3f} ms, "
              f"{result.stats['sub_rounds']} sub-rounds, per-device peak "
              f"{result.peak_memory_bytes / 1024:.0f} KiB")
    print("(Aggregation overhead dominates at this scale - the reason "
          "the paper leaves multi-GPU as future work.)")


if __name__ == "__main__":
    main()
