#!/usr/bin/env python3
"""Anatomy of the GPU algorithm: watch the kernels work.

A tour of the simulated device for readers of Section IV: runs the
scan/loop kernel pair round by round on a small graph, showing the
per-round shell sizes, the kernel-phase cycle split, the ablation
variants' cost differences, and the buffer-overflow failure mode the
ring buffer postpones.

Run:  python examples/gpu_anatomy.py
"""

from repro.core.host import GpuPeelOptions, gpu_peel
from repro.core.variants import get_variant, variant_names
from repro.errors import BufferOverflowError
from repro.graph import generators as gen


def main() -> None:
    graph = gen.planted_core(1_200, core_size=80, core_degree=20,
                             background_degree=4.0, seed=33)
    print(f"Input: {graph}")

    # -- one full run, with per-phase metrics ----------------------------
    result = gpu_peel(graph)
    print(f"\nDecomposed in {result.rounds} rounds "
          f"({result.stats['kernel_launches']} kernel launches: one scan "
          f"+ one loop per round)")
    print(f"scan cycles: {result.stats['scan_cycles']:,.0f}   "
          f"loop cycles: {result.stats['loop_cycles']:,.0f}")
    print(f"simulated time: {result.simulated_ms:.3f} ms   "
          f"peak device memory: {result.peak_memory_bytes / 1024:.0f} KiB")
    sizes = result.shell_sizes()
    print("\nShell sizes per round (k: count):")
    print("  " + "  ".join(
        f"{k}:{int(c)}" for k, c in enumerate(sizes) if c
    ))

    # -- the Table II ablation on this graph ------------------------------
    print("\nAblation (Table II, this graph):")
    base = None
    for name in variant_names():
        r = gpu_peel(graph, variant=name)
        base = base or r.simulated_ms
        print(f"  {name:>6s}: {r.simulated_ms:.3f} ms "
              f"({r.simulated_ms / base:.2f}x ours)")

    # -- buffer overflow and the ring buffer ------------------------------
    print("\nBuffer overflow (Section IV-C):")
    tiny = GpuPeelOptions(buffer_capacity=48)
    try:
        gpu_peel(graph, options=tiny)
        print("  capacity 48: completed (unexpected)")
    except BufferOverflowError as exc:
        print(f"  plain buffer, capacity 48: {exc}")
    ring = get_variant("ours").with_ring_buffer()
    try:
        r = gpu_peel(graph, variant=ring, options=tiny)
        print(f"  ring buffer, capacity 48: completed in "
              f"{r.rounds} rounds - recycling consumed slots works")
    except BufferOverflowError as exc:
        print(f"  ring buffer, capacity 48: still overflows ({exc}); "
              f"ring buffers postpone, not eliminate, the limit")


if __name__ == "__main__":
    main()
