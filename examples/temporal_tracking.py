#!/usr/bin/env python3
"""Tracking an evolving collaboration network — the Fig. 10 case study.

The paper's case study: with a fast decomposition, k-core analysis can
run "frequently or even continuously on the network snapshots" of a
dynamically changing network.  This example reproduces the full
workflow on the synthetic ArnetMiner-style corpus:

* build the temporal co-citation corpus,
* decompose a yearly sequence of snapshots and chart k_max over time,
* compare the most-active (k_max) cores of two eras — the three
  Fig. 10 regions: persistent / newly-emerged / dropped authors.

Run:  python examples/temporal_tracking.py
"""

from repro.analysis.case_study import (
    author_interaction_snapshot,
    compare_snapshots,
    synthesize_citation_corpus,
)
from repro.core.fastpath import peel_fast


def main() -> None:
    corpus = synthesize_citation_corpus()
    print(f"Corpus: {len(corpus.papers)} papers by "
          f"{corpus.num_authors} authors, "
          f"{corpus.papers[0].year}-{corpus.papers[-1].year}")

    # -- continuous monitoring: yearly snapshots --------------------------
    print("\nYear   |V|     |E|      k_max  (k_max-core size)")
    for year in range(1986, 2001, 2):
        graph, _ = author_interaction_snapshot(corpus, year)
        if graph.num_vertices == 0:
            continue
        core = peel_fast(graph)
        kmax = int(core.max())
        size = int((core == kmax).sum())
        bar = "#" * (kmax // 4)
        print(f"{year}  {graph.num_vertices:5d}  {graph.num_edges:7d}  "
              f"{kmax:5d}  ({size:3d})  {bar}")

    # -- the Fig. 10 comparison -------------------------------------------
    result = compare_snapshots(corpus, 1992, 2000)
    print(f"\n{result.summary()}")

    # a couple of named call-outs, like the paper's PhilipSYu example
    if result.persistent:
        star = sorted(result.persistent)[0]
        print(f"\n'{star}' was in the most-active core of both eras "
              f"(the Fig. 10 centre).")
    if result.dropped:
        gone = sorted(result.dropped)[0]
        print(f"'{gone}' was most-active up to {result.year1} but fell "
              f"out of the core by {result.year2} (the Fig. 10 bottom).")


if __name__ == "__main__":
    main()
