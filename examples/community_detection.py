#!/usr/bin/env python3
"""Dense-community detection in a social network via k-core peeling.

One of the paper's motivating applications (Papadopoulos et al.;
Pellegrini et al.'s core & peel): the deepest cores of a social network
are its densest, most cohesive communities, and the core hierarchy
exposes how they nest.

This example builds a social-network analogue with planted communities,
then:

* finds the densest community as the k_max-core's components,
* walks the core hierarchy to show how communities merge as k drops,
* uses core numbers to rank users by "engagement depth" (the k-core
  index of influential-spreader detection, Kitsak et al.).

Run:  python examples/community_detection.py
"""

import numpy as np

from repro import CSRGraph, decompose
from repro.analysis import build_core_hierarchy, k_core_components
from repro.graph import generators as gen


def build_social_network(seed: int = 21):
    """A heavy-tailed social graph with two planted dense communities."""
    background = gen.barabasi_albert(3_000, attach=3, seed=seed)
    community_a = gen.planted_core(
        3_000, core_size=60, core_degree=22, background_degree=0.0,
        seed=seed + 1,
    )
    # a second, shallower community on a shifted vertex range
    shallow = gen.planted_core(
        1_000, core_size=40, core_degree=12, background_degree=0.0,
        seed=seed + 2,
    )
    community_b = CSRGraph.from_edges(
        shallow.edge_array() + 1_500, num_vertices=3_000
    )
    return gen.union_graphs(background, community_a, community_b)


def main() -> None:
    graph = build_social_network()
    print(f"Social network: {graph}")

    result = decompose(graph, "gpu-ours")
    print(f"k_max = {result.kmax} "
          f"(simulated GPU time {result.simulated_ms:.3f} ms)")

    # -- densest communities: components of the deepest core -------------
    communities = k_core_components(graph, result.kmax, result.core)
    print(f"\n{len(communities)} densest communit"
          f"{'y' if len(communities) == 1 else 'ies'} at k = {result.kmax}:")
    for i, community in enumerate(communities):
        sub = graph.induced_subgraph(community)
        print(f"  community {i}: {len(community)} members, "
              f"internal min degree {sub.degrees.min()}, "
              f"avg degree {sub.average_degree:.1f}")

    # -- how communities nest: the core hierarchy ------------------------
    hierarchy = build_core_hierarchy(graph, result.core)
    seed_vertex = int(communities[0][0])
    print(f"\nNesting of member {seed_vertex}'s community:")
    node = hierarchy.best_component_of(seed_vertex)
    while node is not None:
        print(f"  k = {node.k:3d}: component of {node.size} vertices")
        node = hierarchy.nodes[node.parent] if node.parent is not None else None

    # -- engagement ranking: core number as spreader influence ------------
    order = np.argsort(-result.core)[:10]
    print("\nTop-10 users by core number (influential spreaders):")
    for rank, v in enumerate(order, 1):
        print(f"  #{rank}: user {int(v)} "
              f"(core {int(result.core[v])}, degree {graph.degree(int(v))})")
    # degree alone is a worse influence proxy: show a high-degree,
    # low-core user if one exists
    degrees = graph.degrees
    mismatch = np.flatnonzero(
        (degrees > np.percentile(degrees, 99))
        & (result.core < result.kmax // 2)
    )
    if mismatch.size:
        v = int(mismatch[0])
        print(f"\nHigh degree != deep core: user {v} has degree "
              f"{graph.degree(v)} but core only {int(result.core[v])} "
              f"(a hub on the periphery)")


if __name__ == "__main__":
    main()
