#!/usr/bin/env python3
"""Quickstart: decompose the paper's Fig. 1 graph and a real-ish graph.

Walks through the public API in five minutes:

1. build a graph (the paper's running example),
2. compute core numbers with the default fast path,
3. run the same decomposition on the simulated GPU and read its
   metrics,
4. extract shells and k-core subgraphs,
5. compare a few algorithms on a dataset analogue.

Run:  python examples/quickstart.py
"""

from repro import KCoreDecomposer, decompose
from repro.analysis import k_core_subgraph, k_shell, shell_sizes
from repro.graph import datasets
from repro.graph.examples import FIG1_NAMES, fig1_graph


def main() -> None:
    # -- 1. the paper's Fig. 1 graph -------------------------------------
    graph, expected = fig1_graph()
    print(f"Fig. 1 graph: {graph}")

    # -- 2. core numbers with the default (fast, native) path ------------
    result = KCoreDecomposer().decompose(graph)
    print("\nCore numbers:")
    for v in range(graph.num_vertices):
        print(f"  {FIG1_NAMES[v]:>3s}: degree {graph.degree(v)}, "
              f"core {result.core_number_of(v)}")
    assert result.core_number_of(FIG1_NAMES.index("A")) == 2, (
        "A has degree 3 but core number 2 - the paper's key example"
    )

    # -- 3. the same decomposition on the simulated GPU ------------------
    gpu = KCoreDecomposer(mode="simulate", variant="ours").decompose(graph)
    assert gpu.agrees_with(result)
    print(f"\nSimulated GPU run: {gpu.simulated_ms * 1000:.1f} us over "
          f"{gpu.rounds} peel rounds, "
          f"{gpu.stats['kernel_launches']} kernel launches, "
          f"peak memory {gpu.peak_memory_bytes / 1024:.0f} KiB")

    # -- 4. shells and cores ----------------------------------------------
    print(f"\nShell sizes: {shell_sizes(graph, result.core).tolist()}")
    print(f"3-shell (the K4): "
          f"{[FIG1_NAMES[v] for v in k_shell(graph, 3, result.core)]}")
    two_core, members = k_core_subgraph(graph, 2, result.core)
    print(f"2-core: {two_core.num_vertices} vertices, min degree "
          f"{two_core.degrees.min()} (>= 2 by definition)")

    # -- 5. compare algorithms on a Table I analogue ----------------------
    analogue = datasets.load("web-Google")
    print(f"\nweb-Google analogue: {analogue}")
    for algorithm in ("gpu-ours", "bz", "pkc", "gswitch"):
        r = decompose(analogue, algorithm)
        print(f"  {algorithm:>9s}: k_max={r.kmax}, "
              f"simulated {r.simulated_ms:.3f} ms")


if __name__ == "__main__":
    main()
