#!/usr/bin/env python
"""Regenerate the committed certificate goldens.

Usage::

    python scripts/regen_goldens.py

Rewrites ``tests/staticheck/golden/*.json`` from the current analyzer
output:

* ``kernel_certificates.json`` — ``VariantCertificate.to_dict()`` for
  every registered program x certifiable variant (the resource tier);
* ``dataflow_certificates.json`` — ``DataflowCertificate.to_dict()``
  for every combo ``certified_combos()`` admits, *plus* the
  declared-honest ring configs (their unproven obligations are part of
  the frozen surface too).

``tests/staticheck/test_golden.py`` diffs the same renderings against
these files, so an analyzer change that moves any certificate field
fails CI until the goldens are regenerated — which forces the diff into
review instead of letting semantic drift ride along silently.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_common import REPO_ROOT, bootstrap  # noqa: E402

bootstrap()

from repro.staticheck import contracts  # noqa: E402
from repro.staticheck.certificate import certify_program  # noqa: E402
from repro.staticheck.dataflow import analyze_kernel  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "staticheck" / "golden"


def kernel_certificates() -> Dict[str, Any]:
    """``program/variant`` -> VariantCertificate rendering."""
    out: Dict[str, Any] = {}
    for program in sorted(contracts.all_program_contracts()):
        for name, cert in certify_program(program).items():
            out[f"{program}/{name}"] = cert.to_dict()
    return out


def dataflow_certificates() -> Dict[str, Any]:
    """``kernel[config]`` -> DataflowCertificate rendering.

    Covers every registered kernel's full variant space, *including*
    the declared-honest configs ``certified_combos()`` filters out —
    the shape of their unproven obligations is frozen too.
    """
    out: Dict[str, Any] = {}
    for kname, contract in sorted(contracts.all_kernel_contracts().items()):
        for cfg in contract.variants().values():
            out[f"{kname}[{cfg.name}]"] = analyze_kernel(kname, cfg).to_dict()
    return out


def write(path: Path, record: Dict[str, Any]) -> None:
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {len(record)} certificates to "
          f"{path.relative_to(REPO_ROOT)}")


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    write(GOLDEN_DIR / "kernel_certificates.json", kernel_certificates())
    write(GOLDEN_DIR / "dataflow_certificates.json", dataflow_certificates())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
