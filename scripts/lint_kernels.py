#!/usr/bin/env python
"""Static lint pass over every shipped kernel module.

Usage::

    python scripts/lint_kernels.py [--json FILE] [PATH ...]

With no arguments, lints every kernel generator function in
``src/repro/core`` and ``src/repro/systems`` (the default sweep CI
runs).  Explicit paths may be files or directories of ``.py`` sources;
repeated or overlapping arguments (a file given twice, or a file plus a
directory containing it) are deduplicated so each module is linted — and
reported — once.  ``--json FILE`` additionally dumps the
:class:`~repro.sanitize.report.SanitizerReport` as a
``repro.findings/v1`` artifact for CI upload; it does not change the
exit status.

Exit status 0 when every kernel is clean, 1 when any detector fired.
The rules (illegal yields, wall clock, RNG, host-array mutation,
barrier-free shared read-back) live in :mod:`repro.sanitize.lint`; see
``docs/SANITIZER.md`` for the catalogue and the ``# sanitize: ok``
suppression marker.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_common import bootstrap, write_findings  # noqa: E402

bootstrap()

from repro.sanitize.lint import default_kernel_paths, lint_paths  # noqa: E402


def resolve_targets(targets: list[str]) -> list[Path] | None:
    """Expand CLI arguments to a deduplicated, sorted list of files.

    Returns ``None`` when a target does not exist (the exit-2 case).
    """
    seen: set[Path] = set()
    paths: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.exists():
            candidates = [path]
        else:
            print(f"{path}: no such file or directory", file=sys.stderr)
            return None
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                paths.append(candidate)
    return paths


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_kernels",
        description="static lint pass over kernel modules",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the shipped kernels)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write a repro.findings/v1 artifact here (CI upload)",
    )
    args = parser.parse_args(argv)
    if args.paths:
        paths = resolve_targets(args.paths)
        if paths is None:
            return 2
    else:
        paths = default_kernel_paths()
    report = lint_paths(paths)
    print(report.summary())
    if args.json:
        write_findings(args.json, "lint_kernels", report)
        print(f"wrote JSON report to {args.json}")
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
