#!/usr/bin/env python
"""Static lint pass over every shipped kernel module.

Usage::

    python scripts/lint_kernels.py [PATH ...]

With no arguments, lints every kernel generator function in
``src/repro/core`` and ``src/repro/systems`` (the default sweep CI
runs).  Explicit paths may be files or directories of ``.py`` sources.
Exit status 0 when every kernel is clean, 1 when any detector fired.
The rules (illegal yields, wall clock, RNG, host-array mutation,
barrier-free shared read-back) live in :mod:`repro.sanitize.lint`; see
``docs/SANITIZER.md`` for the catalogue and the ``# sanitize: ok``
suppression marker.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sanitize.lint import default_kernel_paths, lint_paths  # noqa: E402


def main(argv: list[str]) -> int:
    if argv:
        paths: list[Path] = []
        for target in argv:
            path = Path(target)
            if path.is_dir():
                paths.extend(sorted(path.rglob("*.py")))
            elif path.exists():
                paths.append(path)
            else:
                print(f"{path}: no such file or directory", file=sys.stderr)
                return 2
    else:
        paths = default_kernel_paths()
    report = lint_paths(paths)
    print(report.summary())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
