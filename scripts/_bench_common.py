"""Shared plumbing for the ``scripts/check_*`` CI gates.

Every gate script needs the same three things: the repo layout
(``REPO_ROOT`` / ``RESULTS_DIR``), an import path that reaches
``src/repro`` without installation (:func:`bootstrap`), and committed
``repro.bench/v1`` table records loaded into a convenient
``dataset -> column -> cell`` mapping (:func:`load_record` /
:func:`cells_by_dataset`).  Gates that emit machine-readable findings
(``lint_kernels --json``, ``check_dataflow --json``) share one artifact
schema, ``repro.findings/v1``, written by :func:`write_findings`.
Keeping them here keeps the gates consistent: a layout or schema change
lands in one place.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"

#: schema tag of the unified findings artifact the gate scripts emit
FINDINGS_SCHEMA = "repro.findings/v1"


def bootstrap() -> None:
    """Make ``import repro`` work from an uninstalled checkout."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


def load_record(path: "str | Path") -> Dict[str, Any]:
    """Load one committed bench/profile JSON record.

    Raises ``SystemExit(2)`` with a clear message when the file is
    missing or not valid JSON — gates treat a broken artefact as a
    configuration error, distinct from a failed check (exit 1).
    """
    path = Path(path)
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"error: {path}: no such file", file=sys.stderr)
        raise SystemExit(2) from None
    except ValueError as exc:
        print(f"error: {path}: invalid JSON ({exc})", file=sys.stderr)
        raise SystemExit(2) from None
    if not isinstance(record, dict):
        print(f"error: {path}: record must be a JSON object",
              file=sys.stderr)
        raise SystemExit(2)
    return record


def write_findings(path: "str | Path", tool: str, report: Any) -> Dict[str, Any]:
    """Write a ``repro.findings/v1`` artifact for CI upload.

    ``report`` is a :class:`~repro.sanitize.report.SanitizerReport` (or
    anything with a compatible ``to_dict``); the artifact wraps its
    rendering with the schema tag and the emitting tool's name, so one
    consumer can ingest the lint, dataflow, and sanitizer gates alike.
    Returns the record that was written.
    """
    record: Dict[str, Any] = {
        "schema": FINDINGS_SCHEMA,
        "tool": tool,
        "report": report.to_dict() if hasattr(report, "to_dict") else dict(report),
    }
    Path(path).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return record


def cells_by_dataset(record: Dict[str, Any]) -> Dict[str, Dict[str, str]]:
    """``repro.bench/v1`` table -> ``{dataset: {column: cell}}``.

    The first column of a bench table is the dataset label; the
    remaining columns are zipped against each row's cells.
    """
    columns = record["columns"][1:]
    return {
        row["dataset"]: dict(zip(columns, row["cells"]))
        for row in record["rows"]
    }
