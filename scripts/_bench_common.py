"""Shared plumbing for the ``scripts/check_*`` CI gates.

Every gate script needs the same three things: the repo layout
(``REPO_ROOT`` / ``RESULTS_DIR``), an import path that reaches
``src/repro`` without installation (:func:`bootstrap`), and committed
``repro.bench/v1`` table records loaded into a convenient
``dataset -> column -> cell`` mapping (:func:`load_record` /
:func:`cells_by_dataset`).  Gates that emit machine-readable findings
(``lint_kernels --json``, ``check_dataflow --json``,
``check_admission --json``) share one artifact schema,
``repro.findings/v1`` — owned by :mod:`repro.sanitize.findings` so the
CLI's ``--json`` dumps emit the identical artifact; the names here are
compatibility re-exports for the gate scripts.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"


def bootstrap() -> None:
    """Make ``import repro`` work from an uninstalled checkout."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


bootstrap()
from repro.obs.export import write_artifact  # noqa: E402,F401  (needs bootstrap)
from repro.sanitize.findings import (  # noqa: E402  (needs bootstrap)
    FINDINGS_SCHEMA,
    write_findings,
)


def load_record(path: "str | Path") -> Dict[str, Any]:
    """Load one committed bench/profile JSON record.

    Raises ``SystemExit(2)`` with a clear message when the file is
    missing or not valid JSON — gates treat a broken artefact as a
    configuration error, distinct from a failed check (exit 1).
    """
    path = Path(path)
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"error: {path}: no such file", file=sys.stderr)
        raise SystemExit(2) from None
    except ValueError as exc:
        print(f"error: {path}: invalid JSON ({exc})", file=sys.stderr)
        raise SystemExit(2) from None
    if not isinstance(record, dict):
        print(f"error: {path}: record must be a JSON object",
              file=sys.stderr)
        raise SystemExit(2)
    return record


def cells_by_dataset(record: Dict[str, Any]) -> Dict[str, Dict[str, str]]:
    """``repro.bench/v1`` table -> ``{dataset: {column: cell}}``.

    The first column of a bench table is the dataset label; the
    remaining columns are zipped against each row's cells.
    """
    columns = record["columns"][1:]
    return {
        row["dataset"]: dict(zip(columns, row["cells"]))
        for row in record["rows"]
    }
