#!/usr/bin/env python
"""Validate bench JSON artefacts against the ``repro.bench/v1`` schema.

Usage::

    python scripts/check_bench_json.py [PATH ...]

With no arguments, validates every ``*.json`` in ``benchmarks/results/``
(and flags ``.txt`` tables missing their JSON sibling).  Explicit paths
may be files or directories.  Exit status 0 when everything conforms,
1 otherwise.  The same checks run in CI via
``tests/test_bench_json.py``; the logic lives in
:mod:`repro.bench.schema`.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_common import RESULTS_DIR, bootstrap  # noqa: E402

bootstrap()

from repro.bench.schema import validate_file, validate_results_dir  # noqa: E402


def main(argv: list[str]) -> int:
    targets = argv or [str(RESULTS_DIR)]
    problems: list[str] = []
    checked = 0
    for target in targets:
        path = Path(target)
        if path.is_dir():
            checked += len(list(path.glob("*.json")))
            problems.extend(validate_results_dir(path))
        elif path.exists():
            checked += 1
            problems.extend(validate_file(path))
        else:
            problems.append(f"{path}: no such file or directory")
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    print(f"checked {checked} record(s): "
          f"{'FAIL' if problems else 'OK'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
