#!/usr/bin/env python
"""CI gate: every registered kernel contract actually certifies.

Usage::

    python scripts/check_admission.py [--json FILE] [--quick]

Exit status 0 when every check passes, 1 otherwise (2 for a broken
invocation).  The registry (:mod:`repro.staticheck.contracts`) is the
admission list of the static-verification pipeline; this gate re-derives
every admitted kernel's certificates from scratch and fails when a
contract's description and its code have drifted.  Four families:

1. **re-derivation** — for every registered :class:`KernelContract`,
   over its full declared variant space: the closed-form bounds and the
   shared-memory layout evaluate (a missing bound is only legal for
   configs the contract declares ``honest_unproven``); the dataflow
   certificate derives without bailing; every undischarged
   :class:`RaceObligation` *outside* the declared-honest set (the
   ring-buffer configs for k-core) fails the gate; and every
   :class:`RaceProof` uses only discharge arguments the contract
   declared in ``race_arguments`` — a proof leaning on an undeclared
   axiom is a contract lie;
2. **programs** — every :class:`ProgramContract` assembles its variant
   certificates (``certify_program``) and the module-coverage gate
   (``verify_inventories``) over the union of all contracts is clean;
3. **bfs domination** — live :func:`~repro.core.bfs_kernel.gpu_bfs`
   runs over a graph matrix with the differential checker, the
   dataflow checker, and the dynamic race sanitizer armed: the BFS
   contract's static bounds must dominate every measured launch, the
   engine-precondition prediction (reference-only — the kernel has no
   vectorized executor) must match ``served_by``, and the levels must
   agree with a host-side reference BFS;
4. **rejection self-test** — the same checking core is run against a
   deliberately *unsound* contract for the racy fixture kernel
   (:mod:`repro.staticheck.fixtures`) claiming full discharge with an
   empty argument set; the gate must reject it.  A gate that cannot
   fail is not a gate.

``--json FILE`` additionally writes the merged findings as a
``repro.findings/v1`` artifact.  ``--quick`` shrinks the family-3
graph matrix for fast local iteration.  See
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import argparse
import sys
from collections import deque
from pathlib import Path
from typing import List

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_common import bootstrap, write_findings  # noqa: E402

bootstrap()

import importlib  # noqa: E402

from repro.core.bfs_kernel import gpu_bfs  # noqa: E402
from repro.core.variants import VariantConfig, get_variant  # noqa: E402
from repro.graph.csr import CSRGraph  # noqa: E402
from repro.graph.examples import path_graph  # noqa: E402
from repro.graph.generators import (  # noqa: E402
    erdos_renyi,
    hub_and_spokes,
    random_tree,
)
from repro.sanitize.report import SanitizerFinding, SanitizerReport  # noqa: E402
from repro.staticheck import contracts  # noqa: E402
from repro.staticheck.bounds import KernelBounds  # noqa: E402
from repro.staticheck.certificate import (  # noqa: E402
    certify_program,
    verify_inventories,
)
from repro.staticheck.dataflow import analyze_function  # noqa: E402
from repro.staticheck.symbolic import Const  # noqa: E402

FAILURES: List[str] = []


def fail(msg: str) -> None:
    FAILURES.append(msg)
    print(f"FAIL: {msg}")


# ---------------------------------------------------------------------------
# the checking core (registry-independent, so the self-test can feed it
# an unregistered contract)
# ---------------------------------------------------------------------------


def admission_findings(
    contract: "contracts.KernelContract", cfg: VariantConfig
) -> List[SanitizerFinding]:
    """Re-derive one kernel x config and return its admission findings."""
    findings: List[SanitizerFinding] = []
    where = f"{contract.name}[{cfg.name}]"
    honest = contract.honest_unproven(cfg)

    try:
        contract.bounds(cfg)
    except ValueError as exc:
        if not honest:
            findings.append(SanitizerFinding(
                "admission-bounds", "error", where,
                f"contract bounds raised for a config not declared "
                f"honest-unproven: {exc}",
            ))
    try:
        layout = contract.shared_layout(cfg)
        if not isinstance(layout, dict) and not hasattr(layout, "items"):
            raise TypeError(f"shared_layout returned {type(layout)!r}")
    except Exception as exc:  # noqa: BLE001 - a gate reports, not raises
        findings.append(SanitizerFinding(
            "admission-bounds", "error", where,
            f"contract shared_layout failed: {exc}",
        ))

    module = importlib.import_module(contract.module)
    cert = analyze_function(
        module, contract.entry, cfg, engine_module=contract.engine_module
    )
    declared = set(contract.race_arguments)
    for proof in cert.proofs:
        if proof.argument not in declared:
            findings.append(SanitizerFinding(
                "admission-undeclared-argument", "error", where,
                f"proof on {proof.space} '{proof.array}' uses discharge "
                f"argument '{proof.argument}' the contract never "
                f"declared (declared: {sorted(declared)})",
            ))
    if cert.unproven and not honest:
        for ob in cert.unproven:
            findings.append(SanitizerFinding(
                "admission-unproven-race", "error", where,
                f"undischarged {ob.kinds} obligation on {ob.space} "
                f"'{ob.array}' outside the declared-honest set: "
                f"{ob.reason}",
            ))
    if honest and not cert.unproven:
        # the analyzer claims to prove what the contract declares
        # unprovable — that is unsoundness, not progress (the same pin
        # scripts/check_dataflow.py keeps on the ring configs)
        findings.append(SanitizerFinding(
            "admission-unproven-race", "error", where,
            "config is declared honest-unproven but the analyzer "
            "discharged every obligation — drop the declaration or "
            "distrust the proof",
        ))
    return findings


# ---------------------------------------------------------------------------
# family 1+2: re-derive every registered contract
# ---------------------------------------------------------------------------


def check_registry(report: SanitizerReport) -> None:
    combos = 0
    for name, contract in contracts.all_kernel_contracts().items():
        for cfg in contract.variants().values():
            combos += 1
            found = admission_findings(contract, cfg)
            report.extend(found)
            for f in found:
                fail(f"{f.where}: {f.message}")
    print(f"re-derived {combos} kernel x config combinations over "
          f"{len(contracts.all_kernel_contracts())} contracts")

    coverage = verify_inventories()
    report.extend(coverage)
    for f in coverage:
        fail(f"coverage: {f.where}: {f.message}")

    for prog_name, prog in contracts.all_program_contracts().items():
        certs = certify_program(prog_name)
        if not certs:
            fail(f"program {prog_name!r} certified zero variants")
        for vname, vcert in certs.items():
            if not vcert.kernels:
                fail(f"program {prog_name!r} variant {vname!r} has no "
                     "kernel certificates")
    print(f"assembled certificates for "
          f"{len(contracts.all_program_contracts())} programs")


# ---------------------------------------------------------------------------
# family 3: BFS bound domination over a graph matrix
# ---------------------------------------------------------------------------


def _reference_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    dist = np.full(graph.num_vertices, -1, dtype=np.int64)
    if graph.num_vertices == 0:
        return dist
    dist[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors_of(v):
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                queue.append(int(u))
    return dist


def check_bfs_domination(report: SanitizerReport, quick: bool) -> None:
    matrix = [
        ("path", path_graph(64), 0),
        ("tree", random_tree(200, seed=3), 0),
    ]
    if not quick:
        matrix += [
            ("er", erdos_renyi(400, 6.0, seed=11), 0),
            ("hub", hub_and_spokes(300, num_hubs=3, seed=5), 1),
            ("empty", CSRGraph.empty(0), 0),
            ("singleton", CSRGraph.empty(1), 0),
        ]
    launches = 0
    for label, graph, source in matrix:
        result = gpu_bfs(
            graph, source,
            sanitize=True, staticheck=True, dataflow=True,
        )
        expected = _reference_bfs(graph, source)
        if not np.array_equal(result.core, expected):
            fail(f"bfs[{label}]: device levels disagree with the host "
                 "reference BFS")
        static = result.staticheck
        if static is None:
            fail(f"bfs[{label}]: no staticheck report came back")
            continue
        launches += static.launches_checked
        report.merge(static)
        for f in static.findings:
            fail(f"bfs[{label}]: {f.detector}: {f.where}: {f.message}")
        san = result.sanitizer
        if san is not None:
            for f in san.findings:
                fail(f"bfs[{label}]: sanitizer {f.detector}: {f.message}")
    if launches == 0:
        fail("bfs matrix checked zero launches — the matrix is vacuous")
    print(f"bfs static bounds dominated {launches} checked launch(es) "
          f"over {len(matrix)} graph(s)")


# ---------------------------------------------------------------------------
# family 4: the gate must reject an unsound contract
# ---------------------------------------------------------------------------


def check_rejects_unsound_contract(report: SanitizerReport) -> None:
    """Feed the checking core a contract that lies about the racy
    fixture kernel; admission findings MUST come back."""
    unsound = contracts.KernelContract(
        name="racy_fixture_kernel",
        program="fixture-selftest",  # never registered: core is fed directly
        module="repro.staticheck.fixtures",
        entry="racy_fixture_kernel",
        bounds=lambda cfg: KernelBounds(Const(1), Const(1), Const(1)),
        shared_layout=lambda cfg: {},
        reachability={"racy_fixture_kernel": ()},
        variants=lambda: {"ours": get_variant("ours")},
        params=(),
        engine_module=None,
        race_arguments=(),  # claims no proof needs any argument
    )
    found = admission_findings(unsound, get_variant("ours"))
    detectors = {f.detector for f in found}
    if "admission-unproven-race" not in detectors:
        fail("self-test: the unsound fixture contract was NOT rejected "
             "for its undischarged obligations — the gate cannot fail")
    else:
        print(f"self-test: unsound fixture contract rejected with "
              f"{len(found)} finding(s) ({sorted(detectors)})")


# ---------------------------------------------------------------------------


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write a repro.findings/v1 artifact")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the BFS graph matrix")
    args = parser.parse_args(argv)

    report = SanitizerReport()
    check_registry(report)
    check_bfs_domination(report, quick=args.quick)
    check_rejects_unsound_contract(report)

    if args.json:
        write_findings(args.json, "check_admission", report)
        print(f"wrote findings artifact to {args.json}")

    if FAILURES:
        print(f"\ncheck_admission: {len(FAILURES)} failure(s)")
        return 1
    print("kernel admission: every registered contract certifies: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
