#!/usr/bin/env python
"""CI gate: critical-path analyses over every critpath-able program.

Usage::

    python scripts/check_critpath.py [--datasets NAMES]
        [--programs NAMES] [--report FILE]
        [--trajectory FILE | --no-trajectory]

For each dataset the gate runs every program in
``repro.api.CRITPATHABLE`` — the nine single-GPU kernel x variant
programs plus the 2- and 4-worker multi-GPU runners — with
``critpath=True`` and fails the build when:

1. **accounting** — the ``repro.critpath/v1`` record must validate:
   the causal DAG, per-span slack, per-track cycle accounting, and the
   ranked what-if table all re-derive **exactly** (no tolerance), and
   every projection sits between the measured time and the static
   floor (:mod:`repro.obs.critpath`);
2. **floors** — the per-kernel static floors must independently
   re-derive from the contract registry's ``floors`` callables
   (:func:`repro.obs.critpath.kernel_floor_cycles`), so a stale stored
   certificate cannot pass;
3. **attribution** — every multi-GPU sub-round must carry a bound
   class (``compute`` / ``straggler`` / ``exchange``) and the
   ``round_bounds`` histogram must tile the round list;
4. **byte-identity** — a plain rerun of each program must produce
   byte-identical cores, simulated milliseconds and counters (the
   analyzer is observability-only by contract).

Every run appends a dated ``critpath`` record to
``benchmarks/results/BENCH_trajectory.json`` (``--trajectory`` moves
it, ``--no-trajectory`` skips it); ``--report`` writes the last
multi-GPU record as a CI artifact.  Exit status: 0 OK, 1 failed check,
2 configuration error.  See the "Critical path & what-if" section of
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import date
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_common import (  # noqa: E402
    RESULTS_DIR,
    bootstrap,
    load_record,
    write_artifact,
)

bootstrap()

import numpy as np  # noqa: E402

from repro.api import CRITPATHABLE, decompose  # noqa: E402
from repro.core.variants import get_variant  # noqa: E402
from repro.graph import datasets  # noqa: E402
from repro.gpusim.costmodel import CostModel  # noqa: E402
from repro.gpusim.spec import DeviceSpec  # noqa: E402
from repro.obs.critpath import (  # noqa: E402
    ROUND_BOUND_CLASSES,
    kernel_floor_cycles,
)
from repro.staticheck.bounds import launch_env  # noqa: E402

TRAJECTORY_SCHEMA = "repro.bench-trajectory/v1"
DEFAULT_TRAJECTORY = RESULTS_DIR / "BENCH_trajectory.json"
DEFAULT_DATASETS = ("web-Google",)


def _refloor(
    graph: Any, record: Dict[str, Any], where: str
) -> List[str]:
    """Independently re-derive every stored per-kernel static floor.

    The builder computed the floors through the contract registry; the
    gate repeats that computation from nothing but the record's variant
    name and the graph, so a floor that drifted from its contract (or
    a contract whose ``floors`` stopped registering) fails loudly.
    """
    problems: List[str] = []
    cfg = get_variant(record["variant"])
    spec = DeviceSpec()
    cost = CostModel()
    env = launch_env(
        graph.num_vertices, len(graph.neighbors), graph.max_degree,
        spec, cfg, None,
    )
    scale = (
        float(record["num_devices"]) if record["kind"] == "multi" else 1.0
    )
    for name, agg in record["kernels"].items():
        expected = kernel_floor_cycles(
            name, cfg, env, cost, spec.num_sms, agg["launches"]
        ) / scale
        if agg["floor_cycles"] != expected:
            problems.append(
                f"{where}: stored floor for {name!r} "
                f"({agg['floor_cycles']!r}) != re-derived "
                f"({expected!r})"
            )
    return problems


def _check_rounds(record: Dict[str, Any], where: str) -> List[str]:
    """Every multi-GPU sub-round must be classified, and the
    histogram must tile the round list."""
    problems: List[str] = []
    rounds = record.get("rounds", [])
    histogram = {name: 0 for name in ROUND_BOUND_CLASSES}
    for i, rnd in enumerate(rounds):
        bound = rnd.get("bound")
        if bound not in ROUND_BOUND_CLASSES:
            problems.append(
                f"{where}: rounds[{i}] carries no bound class "
                f"({bound!r})"
            )
        else:
            histogram[bound] += 1
    if record.get("round_bounds") != histogram:
        problems.append(
            f"{where}: round_bounds {record.get('round_bounds')!r} "
            f"does not tile the {len(rounds)} round(s) ({histogram!r})"
        )
    return problems


def _check_byte_identity(
    graph: Any, name: str, analyzed: Any, where: str
) -> List[str]:
    """A plain rerun must be byte-identical to the analyzed run."""
    problems: List[str] = []
    plain = decompose(graph, name)
    if not np.array_equal(plain.core, analyzed.core):
        problems.append(f"{where}: cores differ with critpath on")
    if plain.simulated_ms != analyzed.simulated_ms:
        problems.append(
            f"{where}: simulated_ms drifted with critpath on "
            f"({plain.simulated_ms!r} != {analyzed.simulated_ms!r})"
        )
    if dict(plain.counters) != dict(analyzed.counters):
        problems.append(f"{where}: counters drifted with critpath on")
    if plain.peak_memory_bytes != analyzed.peak_memory_bytes:
        problems.append(
            f"{where}: peak_memory_bytes drifted with critpath on"
        )
    return problems


def _append_trajectory(
    path: Path,
    dataset: str,
    summary: Dict[str, Any],
    problems: List[str],
) -> None:
    trajectory: Dict[str, Any] = {
        "schema": TRAJECTORY_SCHEMA, "records": [],
    }
    if path.exists():
        loaded = load_record(path)
        if loaded.get("schema") == TRAJECTORY_SCHEMA and isinstance(
            loaded.get("records"), list
        ):
            trajectory = loaded
    trajectory["records"].append({
        "date": date.today().isoformat(),
        "dataset": dataset,
        "critpath": summary,
        "ok": not problems,
        "problems": len(problems),
    })
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(trajectory, indent=1) + "\n", encoding="utf-8"
    )


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--datasets", default=",".join(DEFAULT_DATASETS),
        help="comma-separated dataset names "
             f"(default: {','.join(DEFAULT_DATASETS)})",
    )
    parser.add_argument(
        "--programs", default=",".join(sorted(CRITPATHABLE)),
        help="comma-separated programs to analyze "
             "(default: every CRITPATHABLE program)",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the last multi-GPU repro.critpath/v1 record here",
    )
    parser.add_argument(
        "--trajectory", metavar="FILE", default=str(DEFAULT_TRAJECTORY),
    )
    parser.add_argument("--no-trajectory", action="store_true")
    args = parser.parse_args(argv)

    names = [d for d in args.datasets.split(",") if d]
    programs = [p for p in args.programs.split(",") if p]
    unknown = [p for p in programs if p not in CRITPATHABLE]
    if not names or not programs:
        print("error: need at least one dataset and one program",
              file=sys.stderr)
        return 2
    if unknown:
        print(f"error: not critpath-able: {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    problems: List[str] = []
    last_multi = None
    checked = 0
    for dataset in names:
        try:
            graph = datasets.load(dataset)
        except Exception:
            print(f"error: unknown dataset {dataset!r}", file=sys.stderr)
            return 2
        summary: Dict[str, Any] = {
            "programs": {}, "round_bounds": {}, "invariants_checked": 0,
        }
        for name in programs:
            where = f"{dataset}: {name}"
            result = decompose(graph, name, critpath=True)
            report = result.critpath
            if report is None:
                problems.append(f"{where}: no critpath report produced")
                continue
            record = report.record
            problems.extend(
                f"{where}: {err}" for err in report.validate()
            )
            problems.extend(_refloor(graph, record, where))
            if record["kind"] == "multi":
                problems.extend(_check_rounds(record, where))
                summary["round_bounds"][name] = record["round_bounds"]
                last_multi = report
            problems.extend(
                _check_byte_identity(graph, name, result, where)
            )
            top = record["whatif"][0]
            summary["programs"][name] = {
                "best_scenario": top["scenario"],
                "best_ceiling": round(top["speedup_ceiling"], 4),
            }
            # validator suite + per-kernel floors + 4 identity checks
            checks = 1 + len(record["kernels"]) + 4
            if record["kind"] == "multi":
                checks += 1 + len(record["rounds"])
            summary["invariants_checked"] += checks
            checked += checks
        if not args.no_trajectory:
            _append_trajectory(
                Path(args.trajectory), dataset, summary, problems
            )

    if args.report and last_multi is not None:
        if not write_artifact(
            args.report, last_multi.write, "critpath record"
        ):
            return 1
        print(f"wrote critical-path record to {args.report}")

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    print(
        f"critical paths ({len(names)} dataset(s) x {len(programs)} "
        f"program(s), {checked} invariant(s) checked): "
        f"{'FAIL (%d problem(s))' % len(problems) if problems else 'OK'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
