#!/usr/bin/env python
"""CI gate: the static dataflow certificates and their dynamic agreement.

Usage::

    python scripts/check_dataflow.py [--json FILE] [--quick]

Exit status 0 when every check passes, 1 otherwise (2 for a broken
invocation).  Four families of checks:

1. **certificates** — every kernel x variant combination (the eleven
   Table II + virtual-warp configs, both kernels) analyzes without
   bailing and discharges *every* race obligation; the
   divergence/coalescing brackets are well-formed; the structural
   engine-precondition matrix predicts reference execution exactly for
   ``loop_kernel`` under the virtual-warp variants.  Ring-buffer
   configs are the documented exception: their wraparound aliasing is
   *expected* to leave unproven obligations, and the gate fails if the
   analyzer ever claims to prove them (that would be unsoundness, not
   progress);
2. **detectors** — each of the three dataflow detectors fires on its
   known-bad fixture in :mod:`repro.staticheck.fixtures`
   (``unproven-race-freedom`` on the racy kernel, ``divergence-bound``
   on the impossible-efficiency stats, ``engine-precondition`` on the
   mis-attributed stats).  A detector that cannot fire is dead code
   and the certificates it guards are vacuous;
3. **agreement** — live runs over a small graph matrix with
   ``dataflow=True`` keep every launch inside its bracket and every
   ``engine.served.*`` attribution equal to the static prediction,
   under the vectorized engine, the reference engine, and a monitored
   (sanitized) run;
4. **soundness vs racecheck** — for every variant, a run with both the
   dynamic sanitizer and the dataflow tier enabled: a statically
   proven race-free kernel must come back dynamically clean too.

``--json FILE`` additionally writes the merged reports as a
``repro.findings/v1`` artifact.  ``--quick`` restricts family 3/4 to
the ``ours`` variant for fast local iteration.  See
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_common import bootstrap, write_findings  # noqa: E402

bootstrap()

from repro.core.host import gpu_peel  # noqa: E402
from repro.core.variants import (  # noqa: E402
    EXTENSION_VARIANTS,
    VARIANTS,
    get_variant,
)
from repro.graph.examples import fig1_graph  # noqa: E402
from repro.graph.generators import ring_of_cliques, rmat  # noqa: E402
from repro.sanitize.report import SanitizerReport  # noqa: E402
from repro.staticheck import (  # noqa: E402
    DataflowChecker,
    analyze_function,
    analyze_kernel,
    predicted_tier,
)
from repro.staticheck.dataflow import DATAFLOW_KERNELS  # noqa: E402
from repro.staticheck import fixtures  # noqa: E402

#: every analyzable variant name, Table II order then the extensions
ALL_VARIANTS = (*VARIANTS, *EXTENSION_VARIANTS)

#: the combos whose structural preconditions must route to reference
_EXPECTED_STRUCTURAL_FALLBACK = {
    ("loop_kernel", "vw2"), ("loop_kernel", "vw4"),
}


def check_certificates() -> list[str]:
    """Family 1: every combo race-free, brackets sane, matrix exact."""
    problems: list[str] = []
    fallbacks: set[tuple[str, str]] = set()
    for name in ALL_VARIANTS:
        for kernel in DATAFLOW_KERNELS:
            cert = analyze_kernel(kernel, name)
            if not cert.race_free:
                for ob in cert.unproven:
                    problems.append(
                        f"certificates: {kernel}[{name}]: unproven "
                        f"{ob.kinds} on {ob.space} '{ob.array}' "
                        f"({ob.a_site} <-> {ob.b_site}): {ob.reason}"
                    )
            if not cert.proofs:
                problems.append(
                    f"certificates: {kernel}[{name}]: no race-freedom "
                    "proofs at all — the analyzer saw no conflicting pairs, "
                    "which contradicts the kernels' shared-memory use"
                )
            b = cert.bracket
            if not (0.0 <= b.divergence_lo <= b.divergence_hi <= 1.0
                    and 0.0 <= b.coalescing_lo <= b.coalescing_hi <= 1.0):
                problems.append(
                    f"certificates: {kernel}[{name}]: malformed bracket "
                    f"[{b.divergence_lo}, {b.divergence_hi}] x "
                    f"[{b.coalescing_lo}, {b.coalescing_hi}]"
                )
            if predicted_tier(kernel, get_variant(name)) == "reference":
                fallbacks.add((kernel, name))
    if fallbacks != _EXPECTED_STRUCTURAL_FALLBACK:
        problems.append(
            "certificates: structural-fallback matrix is "
            f"{sorted(fallbacks)}, expected "
            f"{sorted(_EXPECTED_STRUCTURAL_FALLBACK)}"
        )
    # the documented exception: ring addressing must stay *unproven*
    for base in ("ours", "bc"):
        ring = dataclasses.replace(
            get_variant(base), name=f"{base}+ring", ring_buffer=True
        )
        for kernel in DATAFLOW_KERNELS:
            cert = analyze_kernel(kernel, ring)
            if cert.race_free:
                problems.append(
                    f"certificates: {kernel}[{ring.name}]: the analyzer "
                    "claims ring-buffer wraparound is race-free — it has "
                    "no axiom for modular aliasing, so this is unsound"
                )
    return problems


def check_detectors() -> tuple[list[str], SanitizerReport]:
    """Family 2: each detector fires on its known-bad fixture."""
    problems: list[str] = []
    fired = SanitizerReport()
    cfg = get_variant("ours")

    cert = analyze_function(fixtures, "racy_fixture_kernel", cfg)
    if cert.race_free or not cert.unproven:
        problems.append(
            "detectors: unproven-race-freedom did not fire on "
            "fixtures.racy_fixture_kernel"
        )

    checker = DataflowChecker(cfg)
    checker.observe("scan_kernel", fixtures.bracket_violation_stats())
    if not any(f.detector == "divergence-bound" and f.severity == "error"
               for f in checker.report.findings):
        problems.append(
            "detectors: divergence-bound did not fire on "
            "fixtures.bracket_violation_stats()"
        )
    fired.merge(checker.report)

    checker = DataflowChecker(get_variant("vw2"))
    checker.observe("loop_kernel", fixtures.precondition_violation_stats())
    if not any(f.detector == "engine-precondition" and f.severity == "error"
               for f in checker.report.findings):
        problems.append(
            "detectors: engine-precondition did not fire on "
            "fixtures.precondition_violation_stats()"
        )
    fired.merge(checker.report)
    return problems, fired


def check_agreement(quick: bool) -> tuple[list[str], SanitizerReport]:
    """Family 3: live launches agree with the static certificates."""
    problems: list[str] = []
    merged = SanitizerReport()
    fig1, _ = fig1_graph()
    graphs = [
        ("fig1", fig1),
        ("rmat8", rmat(8, edge_factor=8, seed=3)),
        ("cliques", ring_of_cliques(num_cliques=6, clique_size=6)),
    ]
    names = ("ours",) if quick else ALL_VARIANTS
    for label, graph in graphs:
        for name in names:
            result = gpu_peel(graph, variant=get_variant(name),
                              dataflow=True)
            report = result.staticheck
            merged.merge(report)
            if report.errors:
                for f in report.errors:
                    problems.append(
                        f"agreement: {label} x {name} (vectorized): "
                        f"{f.detector}: {f.message}"
                    )
    # the prediction must also adapt to reference and monitored runs
    for kwargs, tag in (
        ({"engine": "reference"}, "reference"),
        ({"sanitize": True}, "monitored"),
    ):
        result = gpu_peel(fig1, variant=get_variant("ours"),
                          dataflow=True, **kwargs)
        report = result.staticheck
        merged.merge(report)
        if report.errors:
            for f in report.errors:
                problems.append(
                    f"agreement: fig1 x ours ({tag}): "
                    f"{f.detector}: {f.message}"
                )
    return problems, merged


def check_soundness(quick: bool) -> list[str]:
    """Family 4: statically proven race-free => dynamically clean."""
    problems: list[str] = []
    graph, _ = fig1_graph()
    names = ("ours",) if quick else ALL_VARIANTS
    for name in names:
        result = gpu_peel(graph, variant=get_variant(name),
                          sanitize=True, dataflow=True)
        if result.sanitizer is not None and not result.sanitizer.clean:
            for f in result.sanitizer.findings:
                problems.append(
                    f"soundness: {name}: statically proven race-free but "
                    f"the dynamic sanitizer found {f.detector}: {f.message}"
                )
        if result.staticheck is not None and result.staticheck.errors:
            for f in result.staticheck.errors:
                problems.append(
                    f"soundness: {name}: {f.detector}: {f.message}"
                )
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="check_dataflow",
        description="gate the dataflow certificates and their agreement",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write a repro.findings/v1 artifact here (CI upload)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="restrict the live sweeps to the 'ours' variant",
    )
    args = parser.parse_args(argv)

    problems = check_certificates()
    detector_problems, fixture_report = check_detectors()
    problems.extend(detector_problems)
    agreement_problems, live_report = check_agreement(args.quick)
    problems.extend(agreement_problems)
    problems.extend(check_soundness(args.quick))

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    combos = len(ALL_VARIANTS) * len(DATAFLOW_KERNELS)
    print(
        f"dataflow certificates ({combos} combos) + detector self-test + "
        f"launch agreement over {live_report.launches_checked} launch(es): "
        f"{'FAIL (%d problem(s))' % len(problems) if problems else 'OK'}"
    )
    if args.json:
        live_report.merge(fixture_report)
        write_findings(args.json, "check_dataflow", live_report)
        print(f"wrote JSON report to {args.json}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
