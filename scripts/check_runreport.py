#!/usr/bin/env python
"""CI gate: full-telemetry run reports over the small-graph matrix.

Usage::

    python scripts/check_runreport.py [--datasets NAMES]
        [--algorithms NAMES] [--report FILE]
        [--trajectory FILE | --no-trajectory]

For each dataset the gate runs every matrix algorithm with *all* of its
telemetry on (trace + profile + memtrace, per the ``repro.api``
capability sets), merges the results into one unified
``repro.runreport/v1`` record (:mod:`repro.obs.runreport`), and fails
the build when:

1. **schema + invariants** — the report must validate: every
   cross-layer consistency invariant (memtrace peak == result peak,
   profile cycles == trace kernel-span cycles == host counters,
   multicore epochs tiling the timeline, disk page-in arithmetic) must
   hold *exactly* — no tolerance;
2. **byte-identity** — an uninstrumented rerun of each algorithm must
   produce byte-identical cores, simulated milliseconds and counters
   (telemetry is observability-only by contract);
3. **coverage** — each report must actually contain the verticals the
   matrix promises (a GPU section with kernels, a multicore section
   with epochs, a disk section with ``disk.*`` counters), so a silently
   dropped producer cannot pass.

The default matrix is ``web-Google`` x (``gpu-ours``, ``pkc``,
``semi-external``) — one GPU kernel run, one multicore baseline, one
semi-external disk run per report.  Every run appends a dated
``runreport`` record to ``benchmarks/results/BENCH_trajectory.json``
(``--trajectory`` moves it, ``--no-trajectory`` skips it); ``--report``
writes the last report as a CI artifact.  Exit status: 0 OK, 1 failed
check, 2 configuration error.  See the "Run reports" section of
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import date
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_common import (  # noqa: E402
    RESULTS_DIR,
    bootstrap,
    load_record,
    write_artifact,
)

bootstrap()

import numpy as np  # noqa: E402

from repro.api import decompose  # noqa: E402
from repro.graph import datasets  # noqa: E402
from repro.obs.runreport import collect_run_report  # noqa: E402

TRAJECTORY_SCHEMA = "repro.bench-trajectory/v1"
DEFAULT_TRAJECTORY = RESULTS_DIR / "BENCH_trajectory.json"
DEFAULT_DATASETS = ("web-Google",)
#: one GPU kernel run, one multicore baseline, one semi-external disk
#: run — the three telemetry verticals a unified report must merge
DEFAULT_ALGORITHMS = ("gpu-ours", "pkc", "semi-external")


def _invariant_count(record: Dict[str, Any]) -> int:
    """How many cross-layer checks the validator applied to ``record``.

    Mirrors the key-presence gating of
    :func:`repro.obs.runreport.validate_runreport` so the trajectory
    records how much was actually verified, not just that nothing
    failed.
    """
    count = 0
    for sec in record.get("sections", []):
        counters = sec.get("counters", {})
        count += 1  # host.rounds == rounds
        if sec.get("memtrace") is not None:
            count += 2  # memtrace validator + peak equality
        if sec.get("profile") is not None:
            count += 1  # profile validator
        if "kernel.scan.cycles" in counters:
            count += 6  # cycles x2 layers x2 kernels, launches, served
        if sec.get("critpath") is not None:
            count += 4  # critpath validator, clock, kernel agreement x2
        if sec.get("multicore") is not None:
            count += 4  # tiling, end re-derivation, bounds, barriers
        if "disk.passes" in counters:
            count += 3  # page-in arithmetic, stats, trace peak
    return count


def _check_coverage(
    record: Dict[str, Any], algorithms: List[str], where: str
) -> List[str]:
    """The report must contain the verticals the matrix promises."""
    problems: List[str] = []
    sections = {s.get("algorithm"): s for s in record.get("sections", [])}
    missing = [a for a in algorithms if a not in sections]
    if missing:
        problems.append(f"{where}: missing section(s): {missing}")
        return problems
    checks = (
        ("a GPU kernel profile",
         any(s.get("profile", {} ) and s["profile"].get("kernels")
             for s in sections.values() if s.get("profile"))),
        ("a multicore epoch profile",
         any(s.get("multicore", {}).get("epochs")
             for s in sections.values() if s.get("multicore"))),
        ("disk.* I/O counters",
         any("disk.passes" in s.get("counters", {})
             for s in sections.values())),
        ("memtrace attribution on every section",
         all(s.get("memtrace") is not None for s in sections.values())),
        ("a trace summary on every section",
         all(s.get("trace") is not None for s in sections.values())),
    )
    for label, present in checks:
        if not present:
            problems.append(f"{where}: report lacks {label}")
    return problems


def _check_byte_identity(
    graph: Any, results: List[Any], where: str
) -> List[str]:
    """Uninstrumented reruns must be byte-identical to the report's."""
    problems: List[str] = []
    for instrumented in results:
        name = instrumented.algorithm
        plain = decompose(graph, name)
        if not np.array_equal(plain.core, instrumented.core):
            problems.append(
                f"{where}: {name}: cores differ with telemetry on"
            )
        if plain.simulated_ms != instrumented.simulated_ms:
            problems.append(
                f"{where}: {name}: simulated_ms drifted with telemetry "
                f"on ({plain.simulated_ms!r} != "
                f"{instrumented.simulated_ms!r})"
            )
        if dict(plain.counters) != dict(instrumented.counters):
            problems.append(
                f"{where}: {name}: counters drifted with telemetry on"
            )
        if plain.peak_memory_bytes != instrumented.peak_memory_bytes:
            problems.append(
                f"{where}: {name}: peak_memory_bytes drifted with "
                f"telemetry on"
            )
    return problems


def _append_trajectory(
    path: Path,
    dataset: str,
    record: Dict[str, Any],
    problems: List[str],
) -> None:
    trajectory: Dict[str, Any] = {
        "schema": TRAJECTORY_SCHEMA, "records": [],
    }
    if path.exists():
        loaded = load_record(path)
        if loaded.get("schema") == TRAJECTORY_SCHEMA and isinstance(
            loaded.get("records"), list
        ):
            trajectory = loaded
    trajectory["records"].append({
        "date": date.today().isoformat(),
        "dataset": dataset,
        "runreport": {
            "sections": {
                sec["algorithm"]: {
                    "simulated_ms": round(sec["simulated_ms"], 4),
                    "peak_memory_bytes": sec["peak_memory_bytes"],
                }
                for sec in record.get("sections", [])
            },
            "invariants_checked": _invariant_count(record),
        },
        "ok": not problems,
        "problems": len(problems),
    })
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(trajectory, indent=1) + "\n", encoding="utf-8"
    )


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--datasets", default=",".join(DEFAULT_DATASETS),
        help="comma-separated dataset names "
             f"(default: {','.join(DEFAULT_DATASETS)})",
    )
    parser.add_argument(
        "--algorithms", default=",".join(DEFAULT_ALGORITHMS),
        help="comma-separated matrix algorithms "
             f"(default: {','.join(DEFAULT_ALGORITHMS)})",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the last dataset's repro.runreport/v1 artifact here",
    )
    parser.add_argument(
        "--trajectory", metavar="FILE", default=str(DEFAULT_TRAJECTORY),
    )
    parser.add_argument("--no-trajectory", action="store_true")
    args = parser.parse_args(argv)

    names = [d for d in args.datasets.split(",") if d]
    algorithms = [a for a in args.algorithms.split(",") if a]
    if not names or not algorithms:
        print("error: need at least one dataset and one algorithm",
              file=sys.stderr)
        return 2

    problems: List[str] = []
    last_report = None
    checked = 0
    for dataset in names:
        try:
            graph = datasets.load(dataset)
        except Exception:
            print(f"error: unknown dataset {dataset!r}", file=sys.stderr)
            return 2
        report, results = collect_run_report(
            graph, algorithms, dataset=dataset
        )
        record = report.to_json()
        last_report = report
        problems.extend(
            f"{dataset}: {err}" for err in report.validate()
        )
        problems.extend(_check_coverage(record, algorithms, dataset))
        problems.extend(_check_byte_identity(graph, results, dataset))
        checked += _invariant_count(record)
        if not args.no_trajectory:
            _append_trajectory(
                Path(args.trajectory), dataset, record, problems
            )

    if args.report and last_report is not None:
        if not write_artifact(
            args.report, last_report.write, "run report"
        ):
            return 1
        print(f"wrote run report to {args.report}")

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    print(
        f"run reports ({len(names)} dataset(s) x {len(algorithms)} "
        f"algorithm(s), {checked} invariant(s) checked): "
        f"{'FAIL (%d problem(s))' % len(problems) if problems else 'OK'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
