#!/usr/bin/env python
"""CI gate: trace device memory and diff against the pinned baseline.

Usage::

    python scripts/check_memory_regression.py [BASELINE_JSON]
        [--quick] [--update] [--report FILE] [--json FILE]
        [--trajectory FILE | --no-trajectory]

Re-runs every program pinned in the committed baseline
(``benchmarks/results/memory_baseline.json``) with memory telemetry
(:mod:`repro.memtrace`) and fails the build when the fresh
measurements drift from the committed ones:

1. **schema** — every fresh report must be a valid
   ``repro.memtrace/v1`` record; the validator enforces the headline
   invariant that the attribution breakdown sums *exactly* (integer
   equality) to the recorded peak;
2. **telemetry identity** — each report's peak must equal the device's
   own ``peak_memory_bytes`` (memtrace is observability-only);
3. **clean findings** — no leak / double-free / use-after-free
   findings in any traced program;
4. **exact peaks** — each program's peak bytes must equal the pinned
   value exactly; simulated memory is deterministic, so there is no
   tolerance — any drift is either a regression or a stale baseline
   (re-baseline with ``--update``);
5. **Table V ordering** — the buffering variants (Ours = SM = VP)
   must share the minimal footprint and every compaction variant must
   sit strictly above it, the paper's Table V shape;
6. **bench-JSON diff** — the fresh peaks must agree with the committed
   ``table5_memory.json`` cells (and its ``attribution`` block) for
   the baseline dataset, tying the gate to the published artefacts;
7. **OOM reproduction** — on the baseline's big graph every pinned
   system emulation must still fail fast (the paper's "N/A" cells)
   while the committed table shows the tailor-made kernel surviving
   (skipped by ``--quick``, which exists for fast local runs and the
   doctored-baseline tests).

Every run appends a dated ``peaks`` record to
``benchmarks/results/BENCH_trajectory.json`` (``--trajectory`` moves
it, ``--no-trajectory`` skips it).  ``--report`` writes the rendered
allocation timelines and ``--json`` the Ours ``repro.memtrace/v1``
report for CI artifacts.  ``--update`` rewrites the baseline from the
fresh measurements instead of checking.  Exit status: 0 OK, 1 drift,
2 configuration error.  See the "Memory telemetry" section of
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import date
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_common import (  # noqa: E402
    RESULTS_DIR,
    bootstrap,
    cells_by_dataset,
    load_record,
)

bootstrap()

from repro.api import decompose  # noqa: E402
from repro.bench.runner import SIMULATED_HOUR_MS, run_program  # noqa: E402
from repro.graph import datasets  # noqa: E402
from repro.memtrace import MemtraceReport, validate_memtrace  # noqa: E402

BASELINE_SCHEMA = "repro.memory-baseline/v1"
TRAJECTORY_SCHEMA = "repro.bench-trajectory/v1"
DEFAULT_BASELINE = RESULTS_DIR / "memory_baseline.json"
DEFAULT_TRAJECTORY = RESULTS_DIR / "BENCH_trajectory.json"
_MIB = 1024 * 1024


def _measure(dataset: str, programs: List[str]) -> Dict[str, Dict[str, Any]]:
    """Run each program with memory telemetry; return peaks + reports."""
    graph = datasets.load(dataset)
    fresh: Dict[str, Dict[str, Any]] = {}
    for name in programs:
        result = decompose(graph, name, memtrace=True)
        report: MemtraceReport = result.memtrace
        fresh[name] = {
            "peak": int(report.peak_bytes),
            "device_peak": int(result.peak_memory_bytes),
            "report": report,
        }
    return fresh


def _check_program(
    name: str,
    fresh: Dict[str, Any],
    pinned: int,
    where: str,
) -> List[str]:
    problems: List[str] = []
    report: MemtraceReport = fresh["report"]
    schema_errors = validate_memtrace(report.to_json())
    problems.extend(
        f"{where}: {name}: invalid fresh memtrace: {err}"
        for err in schema_errors
    )
    if fresh["peak"] != fresh["device_peak"]:
        problems.append(
            f"{where}: {name}: telemetry peak {fresh['peak']} B disagrees "
            f"with the device's peak_memory_bytes {fresh['device_peak']} B"
        )
    for finding in report.findings:
        problems.append(
            f"{where}: {name}: memory finding: {finding}"
        )
    if fresh["peak"] != int(pinned):
        direction = (
            "memory regression" if fresh["peak"] > int(pinned)
            else "stale baseline, re-run with --update"
        )
        problems.append(
            f"{where}: {name}: peak {fresh['peak']} B != committed "
            f"{int(pinned)} B — {direction}"
        )
    return problems


def _check_ordering(
    ordering: Dict[str, Any],
    fresh: Dict[str, Dict[str, Any]],
    where: str,
) -> List[str]:
    """Table V shape: Ours = SM = VP minimal, compaction strictly above."""
    problems: List[str] = []
    tie = [n for n in ordering.get("minimal_tie", []) if n in fresh]
    above = [n for n in ordering.get("above", []) if n in fresh]
    if not tie:
        return [f"{where}: ordering.minimal_tie names no measured program"]
    tie_peaks = {n: fresh[n]["peak"] for n in tie}
    if len(set(tie_peaks.values())) != 1:
        problems.append(
            f"{where}: the buffering variants no longer tie on peak "
            f"bytes: {tie_peaks} — Table V's Ours=SM=VP column split"
        )
    floor = min(tie_peaks.values())
    for name in above:
        if fresh[name]["peak"] <= floor:
            problems.append(
                f"{where}: {name} ({fresh[name]['peak']} B) no longer "
                f"sits above the buffering variants ({floor} B) — "
                "Table V's compaction-scratch ordering flipped"
            )
    return problems


def _check_table5(
    dataset: str, fresh: Dict[str, Dict[str, Any]]
) -> List[str]:
    """Fresh peaks must agree with the committed Table V artefact."""
    table_path = RESULTS_DIR / "table5_memory.json"
    if not table_path.exists():
        return [f"table5: {table_path} missing"]
    record = load_record(table_path)
    cells = cells_by_dataset(record)
    row = cells.get(dataset)
    if row is None:
        return [f"table5: no committed row for dataset {dataset!r}"]
    problems: List[str] = []
    for name, figures in fresh.items():
        committed_text = row.get(name)
        if committed_text is None or committed_text == "N/A":
            continue
        measured_mb = f"{figures['peak'] / _MIB:.2f}"
        if measured_mb != committed_text:
            problems.append(
                f"table5: {dataset}: {name} measured {measured_mb} MB, "
                f"committed {committed_text} MB — bench JSON out of date"
            )
    attribution = record.get("attribution", {}).get(dataset, {})
    for name, entry in attribution.items():
        if name in fresh and entry.get("peak_bytes") != fresh[name]["peak"]:
            problems.append(
                f"table5: {dataset}: attribution pins {name} at "
                f"{entry.get('peak_bytes')} B, measured "
                f"{fresh[name]['peak']} B — attribution out of date"
            )
    return problems


def _check_oom(oom: Dict[str, Any]) -> List[str]:
    """The paper's N/A cells: systems fail fast on the big graph."""
    dataset = oom["dataset"]
    problems: List[str] = []
    table_path = RESULTS_DIR / "table5_memory.json"
    row: Dict[str, str] = {}
    if table_path.exists():
        row = cells_by_dataset(load_record(table_path)).get(dataset, {})
    if row and row.get("gpu-ours") in (None, "N/A"):
        problems.append(
            f"oom: {dataset}: committed table5 no longer shows gpu-ours "
            "surviving the biggest graph"
        )
    for name in oom.get("systems", []):
        outcome = run_program(name, dataset, budget_ms=SIMULATED_HOUR_MS)
        if outcome.status == "ok":
            problems.append(
                f"oom: {dataset}: {name} completed ({outcome.cell}) — the "
                "paper's failed-run (N/A) cell no longer reproduces"
            )
        if row and row.get(name) not in (None, "N/A"):
            problems.append(
                f"oom: {dataset}: committed table5 cell for {name} is "
                f"{row.get(name)!r}, expected 'N/A'"
            )
    return problems


def _write_baseline(
    path: Path,
    baseline: Dict[str, Any],
    fresh_variants: Dict[str, Dict[str, Any]],
    fresh_systems: Dict[str, Dict[str, Any]],
) -> None:
    record: Dict[str, Any] = {
        "schema": BASELINE_SCHEMA,
        "dataset": baseline["dataset"],
        "variants": {
            name: figures["peak"] for name, figures in fresh_variants.items()
        },
        "systems": {
            name: figures["peak"] for name, figures in fresh_systems.items()
        },
        "ordering": baseline["ordering"],
    }
    if baseline.get("oom") is not None:
        record["oom"] = baseline["oom"]
    path.write_text(json.dumps(record, indent=1) + "\n", encoding="utf-8")
    print(
        f"wrote baseline for {len(fresh_variants)} variant(s) and "
        f"{len(fresh_systems)} system(s) to {path}"
    )


def _append_trajectory(
    path: Path,
    dataset: str,
    fresh: Dict[str, Dict[str, Any]],
    problems: List[str],
) -> None:
    record = {"schema": TRAJECTORY_SCHEMA, "records": []}
    if path.exists():
        loaded = load_record(path)
        if loaded.get("schema") == TRAJECTORY_SCHEMA and isinstance(
            loaded.get("records"), list
        ):
            record = loaded
    record["records"].append({
        "date": date.today().isoformat(),
        "dataset": dataset,
        "peaks": {name: figures["peak"] for name, figures in fresh.items()},
        "ok": not problems,
        "problems": len(problems),
    })
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=1) + "\n", encoding="utf-8")


def _write_artifacts(
    args: argparse.Namespace, fresh: Dict[str, Dict[str, Any]]
) -> None:
    if args.report:
        timelines = "\n\n".join(
            figures["report"].render() for figures in fresh.values()
        )
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(timelines + "\n", encoding="utf-8")
        print(f"wrote memory timelines to {path}")
    if args.json:
        name = "gpu-ours" if "gpu-ours" in fresh else next(iter(fresh))
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        fresh[name]["report"].write(path)
        print(f"wrote {name} memtrace report to {path}")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the big-graph OOM reproduction (fast local runs)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from fresh measurements and exit",
    )
    parser.add_argument("--report", metavar="FILE", default=None)
    parser.add_argument("--json", metavar="FILE", default=None)
    parser.add_argument(
        "--trajectory", metavar="FILE", default=str(DEFAULT_TRAJECTORY),
    )
    parser.add_argument("--no-trajectory", action="store_true")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    baseline = load_record(baseline_path)
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(
            f"error: {baseline_path}: schema must be {BASELINE_SCHEMA!r}, "
            f"got {baseline.get('schema')!r}", file=sys.stderr,
        )
        return 2
    dataset = baseline["dataset"]
    pinned_variants: Dict[str, int] = dict(baseline["variants"])
    pinned_systems: Dict[str, int] = dict(baseline.get("systems", {}))

    fresh_variants = _measure(dataset, list(pinned_variants))
    fresh_systems = _measure(dataset, list(pinned_systems))
    fresh = {**fresh_variants, **fresh_systems}

    if args.update:
        _write_baseline(baseline_path, baseline, fresh_variants, fresh_systems)
        _write_artifacts(args, fresh)
        return 0

    problems: List[str] = []
    for name, pinned in {**pinned_variants, **pinned_systems}.items():
        problems.extend(_check_program(name, fresh[name], pinned, dataset))
    problems.extend(
        _check_ordering(dict(baseline["ordering"]), fresh, dataset)
    )
    problems.extend(_check_table5(dataset, fresh))
    oom = baseline.get("oom")
    if oom is not None and not args.quick:
        problems.extend(_check_oom(dict(oom)))

    _write_artifacts(args, fresh)
    if not args.no_trajectory:
        _append_trajectory(Path(args.trajectory), dataset, fresh, problems)

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    print(
        f"memory regression vs {baseline_path.name} "
        f"({len(fresh)} program(s) on {dataset}): "
        f"{'FAIL (%d problem(s))' % len(problems) if problems else 'OK'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
