#!/usr/bin/env python3
"""Append the measured tables under benchmarks/results/ to EXPERIMENTS.md.

Run after a full bench sweep; replaces everything below the appendix
marker so the file stays idempotent.
"""

from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
MARKER = "## Appendix: measured tables (full 20-dataset sweep)"

ORDER = [
    "table1_datasets",
    "table2_ablation",
    "table3_gpu",
    "table4_cpu",
    "table5_memory",
    "fig10_case_study",
]


def main() -> None:
    experiments = ROOT / "EXPERIMENTS.md"
    text = experiments.read_text()
    if MARKER in text:
        text = text[: text.index(MARKER)].rstrip() + "\n"
    blocks = [MARKER, ""]
    for name in ORDER:
        path = ROOT / "benchmarks" / "results" / f"{name}.txt"
        if not path.exists():
            continue
        blocks.append("```")
        blocks.append(path.read_text().rstrip())
        blocks.append("```")
        blocks.append("")
    experiments.write_text(text + "\n" + "\n".join(blocks))
    print(f"appended {len(ORDER)} tables to {experiments}")


if __name__ == "__main__":
    main()
