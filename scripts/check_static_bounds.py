#!/usr/bin/env python
"""CI gate: evaluate static certificates against committed bench JSON.

Usage::

    python scripts/check_static_bounds.py [TABLE2_JSON [TABLE5_JSON]]

With no arguments, checks the committed ``repro.bench/v1`` artefacts in
``benchmarks/results/``.  Exit status 0 when every check passes, 1
otherwise.  Four families of checks:

1. **coverage** — the certifier's coverage gate over the kernel
   modules is clean (every ``ctx`` function annotated, every call edge
   in the reachability table) and all eleven variants certify;
2. **static ordering** — evaluated per dataset, the certificates
   themselves order ``issued(ours) <= issued(bc) <= issued(ec)`` for
   both kernels (the instruction-overhead argument of Table II), and
   the device-memory certificates make Ours/SM/VP tie while BC/EC pay
   exactly the compaction-scratch surcharge;
3. **Table II pinning** — the committed ablation rows keep
   ``ours <= bc <= ec`` per dataset, with the row winner ``ours``
   everywhere except ``trackers``, where ``vp`` wins (the paper's
   latency-boundness claim); every committed time also sits below the
   certificate's run-total ceiling ``R * (scan_ms + loop_ms)``;
4. **Table V pinning** — the committed memory rows match the exact
   device-memory certificates (Ours/SM/VP tie at the smallest
   footprint; EC/BC pay the scratch surcharge).

A kernel or cost-model change that breaks a bound, or a data change
that shifts the pinned orderings, fails the build.  See
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_common import (  # noqa: E402
    REPO_ROOT,
    bootstrap,
    cells_by_dataset,
    load_record,
)

bootstrap()

from repro.core.variants import VARIANTS  # noqa: E402
from repro.gpusim.costmodel import CostModel  # noqa: E402
from repro.gpusim.spec import DeviceSpec  # noqa: E402
from repro.graph import datasets  # noqa: E402
from repro.staticheck import (  # noqa: E402
    certify_all,
    launch_env,
    ms_bound,
    verify_inventories,
)

#: the Table II ordering chain the gate pins (plain variants; the +sm /
#: +vp columns follow the same chain but tie more often, so the plain
#: chain is the load-bearing claim)
_ORDERING_CHAIN = ("ours", "bc", "ec")
#: the one dataset where VP beats Ours (the paper's Table II footnote)
_VP_WINS_ON = "trackers"


def _dataset_env(name: str, spec: DeviceSpec, cfg) -> dict[str, float]:
    graph = datasets.load(name)
    return launch_env(
        graph.num_vertices, len(graph.neighbors), graph.max_degree, spec, cfg
    )


def check_coverage() -> list[str]:
    problems = [f"coverage: {finding}" for finding in verify_inventories()]
    certs = certify_all()
    if len(certs) != 11:
        problems.append(
            f"coverage: expected 11 certified variants, got {len(certs)}"
        )
    return problems


def check_static_ordering(spec: DeviceSpec) -> list[str]:
    """The certificates' own Ours <= BC <= EC instruction ordering."""
    problems: list[str] = []
    certs = certify_all()
    for dataset in datasets.dataset_names():
        for kernel in ("scan_kernel", "loop_kernel"):
            issued = {}
            for name in _ORDERING_CHAIN:
                cfg = VARIANTS[name]
                env = _dataset_env(dataset, spec, cfg)
                bounds = certs[name].certificate_for(kernel).bounds
                issued[name] = bounds.issued.evaluate(env)
            for lo, hi in zip(_ORDERING_CHAIN, _ORDERING_CHAIN[1:]):
                if issued[lo] > issued[hi]:
                    problems.append(
                        f"static ordering: {dataset} {kernel}: "
                        f"issued bound of {lo} ({issued[lo]:g}) exceeds "
                        f"{hi} ({issued[hi]:g})"
                    )
        # device-memory certificates: Ours/SM/VP tie, BC/EC pay scratch
        env = _dataset_env(dataset, spec, VARIANTS["ours"])
        mem = {
            name: certs[name].device_memory_bytes(env, spec)
            for name in ("ours", "sm", "vp", "bc", "ec")
        }
        if not (mem["ours"] == mem["sm"] == mem["vp"]):
            problems.append(
                f"static ordering: {dataset}: Ours/SM/VP device-memory "
                f"certificates do not tie: {mem}"
            )
        scratch = 3 * spec.default_grid_dim * spec.default_block_dim
        expected = mem["ours"] + scratch * spec.id_bytes
        for name in ("bc", "ec"):
            if mem[name] != expected:
                problems.append(
                    f"static ordering: {dataset}: {name} device-memory "
                    f"certificate {mem[name]} != ours + scratch {expected}"
                )
    return problems


def check_table2(path: Path, spec: DeviceSpec) -> list[str]:
    """Pin the committed ablation ordering and the run-total ceiling."""
    problems: list[str] = []
    cells = cells_by_dataset(load_record(path))
    certs = certify_all()
    cost = CostModel()
    for dataset, row in cells.items():
        ms = {name: float(value) for name, value in row.items()}
        # (a) the Ours <= BC <= EC chain, non-strict (small datasets tie)
        for lo, hi in zip(_ORDERING_CHAIN, _ORDERING_CHAIN[1:]):
            if ms[lo] > ms[hi]:
                problems.append(
                    f"{path.name}: {dataset}: {lo} ({ms[lo]}) is slower "
                    f"than {hi} ({ms[hi]}) — Ours>=BC>=EC ordering shifted"
                )
        # (b) the row winner: ours everywhere, vp strictly on trackers
        best = min(ms.values())
        if dataset == _VP_WINS_ON:
            if not ms["vp"] < ms["ours"]:
                problems.append(
                    f"{path.name}: {dataset}: vp ({ms['vp']}) no longer "
                    f"beats ours ({ms['ours']}) — the latency-boundness "
                    "claim shifted"
                )
        elif ms["ours"] > best:
            winner = min(ms, key=ms.get)
            problems.append(
                f"{path.name}: {dataset}: winner is {winner} ({best}), "
                f"not ours ({ms['ours']})"
            )
        # (c) every committed time sits under the certificate ceiling
        for name, value in ms.items():
            cfg = VARIANTS[name]
            env = _dataset_env(dataset, spec, cfg)
            rounds = env["R"]
            cert = certs[name]
            ceiling = rounds * (
                ms_bound(cert.scan.bounds, cost, env)
                + ms_bound(cert.loop.bounds, cost, env)
            )
            if value > ceiling:
                problems.append(
                    f"{path.name}: {dataset}: committed {name} time "
                    f"{value} ms exceeds the certificate run-total "
                    f"ceiling {ceiling:.3f} ms"
                )
    return problems


def check_table5(path: Path, spec: DeviceSpec) -> list[str]:
    """Pin the committed memory rows to the device-memory certificates."""
    problems: list[str] = []
    cells = cells_by_dataset(load_record(path))
    certs = certify_all()
    mb = 1024.0 * 1024.0
    column_variant = {
        "gpu-ours": "ours", "gpu-sm": "sm", "gpu-vp": "vp",
        "gpu-ec": "ec", "gpu-bc": "bc",
    }
    for dataset, row in cells.items():
        env = _dataset_env(dataset, spec, VARIANTS["ours"])
        for column, variant in column_variant.items():
            cell = row.get(column)
            if cell in (None, "N/A"):
                continue
            committed = float(cell)
            certified = certs[variant].device_memory_bytes(env, spec) / mb
            # the table rounds to 2 decimals; the certificate is exact
            if abs(committed - certified) > 0.005 + 1e-9:
                problems.append(
                    f"{path.name}: {dataset}: {column} committed "
                    f"{committed:.2f} MB != certified {certified:.3f} MB"
                )
    return problems


def main(argv: list[str]) -> int:
    results = REPO_ROOT / "benchmarks" / "results"
    table2 = Path(argv[0]) if argv else results / "table2_ablation.json"
    table5 = (
        Path(argv[1]) if len(argv) > 1 else results / "table5_memory.json"
    )
    spec = DeviceSpec()
    problems: list[str] = []
    for path in (table2, table5):
        if not path.exists():
            print(f"error: {path}: no such file", file=sys.stderr)
            return 2
    problems.extend(check_coverage())
    problems.extend(check_static_ordering(spec))
    problems.extend(check_table2(table2, spec))
    problems.extend(check_table5(table5, spec))
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    print(
        f"static bounds vs {table2.name} + {table5.name}: "
        f"{'FAIL (%d problem(s))' % len(problems) if problems else 'OK'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
