#!/usr/bin/env python
"""CI gate: profile the kernel variants and diff against the baseline.

Usage::

    python scripts/check_perf_regression.py [BASELINE_JSON]
        [--quick] [--update] [--report FILE] [--flamegraph FILE]
        [--trajectory FILE | --no-trajectory]

Re-runs every kernel variant pinned in the committed baseline
(``benchmarks/results/profile_baseline.json``) under the kernel
profiler (:mod:`repro.profile`) and fails the build when the fresh
measurements drift from the committed ones:

1. **schema** — every fresh profile must be a valid
   ``repro.profile/v1`` record (the validator also re-checks the
   arithmetic invariants against ``CostModel.block_cycles``);
2. **cycle budgets** — each variant's total simulated cycles must stay
   within the baseline tolerance of its committed budget, in *both*
   directions: slower is a regression, faster means the baseline is
   stale (re-baseline with ``--update``);
3. **bound classes** — each kernel's speed-of-light bound class
   (compute / memory / latency) must match the pinned one; a flipped
   class means the roofline balance moved even if totals did not
   (e.g. the loop kernel is latency-bound on ``web-Google`` but
   memory-bound on ``trackers``);
4. **bench-JSON diff** — the fresh simulated times must agree with the
   committed Table II row for the baseline dataset
   (``table2_ablation.json``), tying the profile gate to the published
   artefacts;
5. **Table II winner** — on the ``vp_check`` dataset (``trackers``)
   the VP variant must still beat Ours, the paper's latency-boundness
   claim (skipped by ``--quick``, which exists for fast local runs
   and for the doctored-baseline tests).

Every run appends a dated record to
``benchmarks/results/BENCH_trajectory.json`` (``--trajectory`` moves
it, ``--no-trajectory`` skips it) so the repository accumulates a
cycle-count history.  ``--report`` / ``--flamegraph`` write the
speed-of-light tables and the Ours folded stacks for CI artifacts.
``--update`` rewrites the baseline from the fresh measurements
instead of checking.  Exit status: 0 OK, 1 drift, 2 configuration
error.  See the "Profiling" section of ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import date
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_common import (  # noqa: E402
    RESULTS_DIR,
    bootstrap,
    cells_by_dataset,
    load_record,
)

bootstrap()

from repro.core.host import gpu_peel  # noqa: E402
from repro.graph import datasets  # noqa: E402
from repro.profile import ProfileReport, validate_profile  # noqa: E402

BASELINE_SCHEMA = "repro.profile-baseline/v1"
TRAJECTORY_SCHEMA = "repro.bench-trajectory/v1"
DEFAULT_BASELINE = RESULTS_DIR / "profile_baseline.json"
DEFAULT_TRAJECTORY = RESULTS_DIR / "BENCH_trajectory.json"
#: absolute slack for Table II cells, which are rounded to 3 decimals
_TABLE_MS_SLACK = 0.0005


def _measure(dataset: str, variants: List[str]) -> Dict[str, Dict[str, Any]]:
    """Run each variant profiled; return its fresh figures + report."""
    graph = datasets.load(dataset)
    fresh: Dict[str, Dict[str, Any]] = {}
    for name in variants:
        result = gpu_peel(graph, variant=name, profile=True)
        report: ProfileReport = result.profile
        fresh[name] = {
            "cycles": report.summary().cycles,
            "ms": result.simulated_ms,
            "bounds": {
                kernel: agg.bound
                for kernel, agg in report.kernels().items()
            },
            "report": report,
        }
    return fresh


def _check_variant(
    name: str,
    fresh: Dict[str, Any],
    pinned: Dict[str, Any],
    tolerance: float,
    where: str,
) -> List[str]:
    problems: List[str] = []
    schema_errors = validate_profile(fresh["report"].to_json())
    problems.extend(
        f"{where}: {name}: invalid fresh profile: {err}"
        for err in schema_errors
    )
    budget = float(pinned["cycles"])
    cycles = float(fresh["cycles"])
    if cycles > budget * (1.0 + tolerance):
        problems.append(
            f"{where}: {name}: {cycles:.0f} cycles exceeds the committed "
            f"budget {budget:.0f} by more than {tolerance:.0%} — "
            "performance regression"
        )
    elif cycles < budget * (1.0 - tolerance):
        problems.append(
            f"{where}: {name}: {cycles:.0f} cycles undershoots the "
            f"committed budget {budget:.0f} by more than {tolerance:.0%} "
            "— stale baseline, re-run with --update"
        )
    for kernel, pinned_bound in dict(pinned.get("bounds", {})).items():
        got = fresh["bounds"].get(kernel)
        if got != pinned_bound:
            problems.append(
                f"{where}: {name}: {kernel} is {got}-bound, baseline "
                f"pins {pinned_bound}-bound — the roofline balance moved"
            )
    return problems


def _check_table2(
    dataset: str,
    fresh: Dict[str, Dict[str, Any]],
    tolerance: float,
) -> List[str]:
    """Fresh simulated times must agree with the committed Table II."""
    table_path = RESULTS_DIR / "table2_ablation.json"
    if not table_path.exists():
        return [f"table2: {table_path} missing"]
    cells = cells_by_dataset(load_record(table_path))
    row = cells.get(dataset)
    if row is None:
        return [f"table2: no committed row for dataset {dataset!r}"]
    problems: List[str] = []
    for name, committed_text in row.items():
        if name not in fresh:
            continue
        committed = float(committed_text)
        measured = float(fresh[name]["ms"])
        slack = _TABLE_MS_SLACK + tolerance * committed
        if abs(measured - committed) > slack:
            problems.append(
                f"table2: {dataset}: {name} measured {measured:.4f} ms, "
                f"committed {committed:.4f} ms (slack {slack:.4f}) — "
                "bench JSON out of date"
            )
    return problems


def _check_vp(vp_check: Dict[str, Any], tolerance: float) -> List[str]:
    """The Table II winner claim: VP beats Ours on its dataset."""
    dataset = vp_check["dataset"]
    faster = vp_check.get("faster", "vp")
    slower = vp_check.get("slower", "ours")
    fresh = _measure(dataset, [slower, faster])
    problems: List[str] = []
    for name, pinned in dict(vp_check.get("variants", {})).items():
        if name in fresh:
            problems.extend(
                _check_variant(name, fresh[name], pinned, tolerance, dataset)
            )
    if fresh[faster]["cycles"] >= fresh[slower]["cycles"]:
        problems.append(
            f"{dataset}: {faster} ({fresh[faster]['cycles']:.0f} cycles) "
            f"no longer beats {slower} "
            f"({fresh[slower]['cycles']:.0f}) — the paper's "
            "latency-boundness claim shifted"
        )
    return problems


def _write_baseline(
    path: Path,
    dataset: str,
    tolerance: float,
    fresh: Dict[str, Dict[str, Any]],
    vp_check: Dict[str, Any] | None,
) -> None:
    record: Dict[str, Any] = {
        "schema": BASELINE_SCHEMA,
        "dataset": dataset,
        "tolerance": tolerance,
        "variants": {
            name: {
                "cycles": round(figures["cycles"], 1),
                "bounds": figures["bounds"],
            }
            for name, figures in fresh.items()
        },
    }
    if vp_check is not None:
        vp_fresh = _measure(
            vp_check["dataset"],
            [vp_check.get("slower", "ours"), vp_check.get("faster", "vp")],
        )
        record["vp_check"] = {
            "dataset": vp_check["dataset"],
            "faster": vp_check.get("faster", "vp"),
            "slower": vp_check.get("slower", "ours"),
            "variants": {
                name: {
                    "cycles": round(figures["cycles"], 1),
                    "bounds": figures["bounds"],
                }
                for name, figures in vp_fresh.items()
            },
        }
    path.write_text(json.dumps(record, indent=1) + "\n", encoding="utf-8")
    print(f"wrote baseline for {len(fresh)} variant(s) to {path}")


def _append_trajectory(
    path: Path,
    dataset: str,
    fresh: Dict[str, Dict[str, Any]],
    problems: List[str],
) -> None:
    record = {"schema": TRAJECTORY_SCHEMA, "records": []}
    if path.exists():
        loaded = load_record(path)
        if loaded.get("schema") == TRAJECTORY_SCHEMA and isinstance(
            loaded.get("records"), list
        ):
            record = loaded
    record["records"].append({
        "date": date.today().isoformat(),
        "dataset": dataset,
        "cycles": {
            name: round(figures["cycles"], 1)
            for name, figures in fresh.items()
        },
        "ok": not problems,
        "problems": len(problems),
    })
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=1) + "\n", encoding="utf-8")


def _write_artifacts(
    args: argparse.Namespace, fresh: Dict[str, Dict[str, Any]]
) -> None:
    if args.report:
        tables = "\n\n".join(
            figures["report"].render() for figures in fresh.values()
        )
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(tables + "\n", encoding="utf-8")
        print(f"wrote speed-of-light report to {path}")
    if args.flamegraph:
        name = "ours" if "ours" in fresh else next(iter(fresh))
        path = Path(args.flamegraph)
        path.parent.mkdir(parents=True, exist_ok=True)
        fresh[name]["report"].write_folded(path)
        print(f"wrote {name} flamegraph stacks to {path}")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the cross-dataset vp-wins check (fast local runs)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from fresh measurements and exit",
    )
    parser.add_argument("--report", metavar="FILE", default=None)
    parser.add_argument("--flamegraph", metavar="FILE", default=None)
    parser.add_argument(
        "--trajectory", metavar="FILE", default=str(DEFAULT_TRAJECTORY),
    )
    parser.add_argument("--no-trajectory", action="store_true")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    baseline = load_record(baseline_path)
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(
            f"error: {baseline_path}: schema must be {BASELINE_SCHEMA!r}, "
            f"got {baseline.get('schema')!r}", file=sys.stderr,
        )
        return 2
    dataset = baseline["dataset"]
    tolerance = float(baseline.get("tolerance", 0.05))
    pinned_variants: Dict[str, Any] = dict(baseline["variants"])

    fresh = _measure(dataset, list(pinned_variants))
    vp_check = baseline.get("vp_check")

    if args.update:
        _write_baseline(
            baseline_path, dataset, tolerance, fresh,
            None if args.quick else vp_check,
        )
        _write_artifacts(args, fresh)
        return 0

    problems: List[str] = []
    for name, pinned in pinned_variants.items():
        problems.extend(
            _check_variant(name, fresh[name], pinned, tolerance, dataset)
        )
    problems.extend(_check_table2(dataset, fresh, tolerance))
    if vp_check is not None and not args.quick:
        problems.extend(_check_vp(dict(vp_check), tolerance))

    _write_artifacts(args, fresh)
    if not args.no_trajectory:
        _append_trajectory(Path(args.trajectory), dataset, fresh, problems)

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    print(
        f"perf regression vs {baseline_path.name} "
        f"({len(pinned_variants)} variant(s) on {dataset}): "
        f"{'FAIL (%d problem(s))' % len(problems) if problems else 'OK'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
