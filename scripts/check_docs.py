#!/usr/bin/env python3
"""CI gate: the documentation stays wired to the code.

    python scripts/check_docs.py [--verbose]

Two classes of doc rot this catches:

1. **Broken links** — every relative markdown link (``[x](docs/FOO.md)``,
   ``[y](SIMULATOR.md)``, anchors and ``examples/`` directories
   included) in the repository's top-level and ``docs/`` markdown
   pages must resolve to an existing file or directory.
2. **Phantom CLI flags** — every ``--flag`` a markdown page mentions
   in an inline-code span or fenced block must be a real flag of
   ``python -m repro`` (``repro.cli.build_parser``), so examples never
   drift from the parser.  Long options only; flags of *other* tools
   (pytest, pip, mypy) are ignored unless the line invokes
   ``python -m repro``.

Exit status: 0 OK, 1 findings, 2 configuration error (missing file).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Set

from _bench_common import REPO_ROOT, bootstrap

#: the pages the gate walks (globs, relative to the repo root)
DOC_GLOBS = ("*.md", "docs/*.md")

#: ``[text](target)`` — target captured without any ``#anchor``
_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")

#: ``--long-flag`` tokens on lines that invoke the repro CLI
_FLAG = re.compile(r"(--[a-z][a-z0-9-]+)")
_CLI_LINE = re.compile(r"python -m repro\b|^repro\b")


def _doc_files() -> List[Path]:
    files: List[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    if not files:
        print("error: no markdown files found", file=sys.stderr)
        raise SystemExit(2)
    return files


def _cli_flags() -> Set[str]:
    """The long option strings ``python -m repro`` actually accepts."""
    from repro.cli import build_parser

    flags: Set[str] = set()
    for action in build_parser()._actions:
        flags.update(
            opt for opt in action.option_strings if opt.startswith("--")
        )
    return flags


def check_links(path: Path, text: str, problems: List[str]) -> int:
    checked = 0
    for match in _LINK.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue  # external URL: out of scope (offline CI)
        checked += 1
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            line = text[: match.start()].count("\n") + 1
            rel = path.relative_to(REPO_ROOT)
            problems.append(f"{rel}:{line}: broken link -> {target}")
    return checked


def check_cli_flags(
    path: Path, text: str, known: Set[str], problems: List[str]
) -> int:
    checked = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not _CLI_LINE.search(line):
            continue
        for flag in _FLAG.findall(line):
            checked += 1
            if flag not in known:
                rel = path.relative_to(REPO_ROOT)
                problems.append(
                    f"{rel}:{lineno}: unknown repro CLI flag {flag}"
                )
    return checked


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--verbose", action="store_true",
                        help="print per-file check counts")
    args = parser.parse_args(argv)
    bootstrap()
    known_flags = _cli_flags()
    problems: List[str] = []
    n_links = n_flags = 0
    for path in _doc_files():
        text = path.read_text(encoding="utf-8")
        links = check_links(path, text, problems)
        flags = check_cli_flags(path, text, known_flags, problems)
        n_links += links
        n_flags += flags
        if args.verbose:
            print(f"  {path.relative_to(REPO_ROOT)}: "
                  f"{links} links, {flags} CLI flags")
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({n_links} links, {n_flags} CLI flag "
          f"mentions across the markdown pages)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
