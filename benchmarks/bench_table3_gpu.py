"""Table III — computation time of the GPU programs.

Ours vs VETGA, Medusa-MPM, Medusa-Peel, Gunrock and GSWITCH over all
datasets, with the paper's failure modes: "OOM" when a program exceeds
the device's global memory, "> 1hr" when it exceeds the (scaled) time
budget, and "LD > 1hr" when VETGA's loading alone exceeds it.
"""

import pytest

from repro.bench.tables import render_table, write_json, write_table
from repro.graph import datasets

COLUMNS = ["gpu-ours", "vetga", "medusa-mpm", "medusa-peel",
           "gunrock", "gswitch"]


@pytest.fixture(scope="module")
def table3(cache, dataset_names):
    return {
        name: {algo: cache.get(algo, name) for algo in COLUMNS}
        for name in dataset_names
    }


def test_table3_gpu_programs(table3, benchmark):
    from repro.core.host import gpu_peel
    benchmark(gpu_peel, datasets.load('web-Google'))
    rows = [
        [name] + [outcomes[a].cell for a in COLUMNS]
        for name, outcomes in table3.items()
    ]
    title = "Table III: computation time of GPU programs (simulated ms)"
    columns = ["dataset"] + COLUMNS
    write_table("table3_gpu",
                render_table(title, columns, rows, highlight_min=True))
    write_json("table3_gpu", title, columns, rows,
               qualitative={
                   "ours_always_ok": all(
                       o["gpu-ours"].status == "ok" for o in table3.values()
                   ),
                   "failures": {
                       name: {a: o.status for a, o in outcomes.items()
                              if o.status != "ok"}
                       for name, outcomes in table3.items()
                       if any(o.status != "ok" for o in outcomes.values())
                   },
               })


def test_ours_always_wins(table3):
    for name, outcomes in table3.items():
        ours = outcomes["gpu-ours"]
        assert ours.status == "ok", name
        for algo in COLUMNS[1:]:
            other = outcomes[algo]
            if other.status == "ok":
                assert other.simulated_ms > ours.simulated_ms, (name, algo)


def test_ours_never_fails(table3):
    """Paper: "Our GPU program can handle all these graphs"."""
    assert all(o["gpu-ours"].status == "ok" for o in table3.values())


def test_system_ordering(table3):
    """Paper: Medusa slower than Gunrock, Gunrock slower than GSwitch."""
    for name, outcomes in table3.items():
        gswitch, gunrock, medusa = (
            outcomes["gswitch"], outcomes["gunrock"], outcomes["medusa-peel"]
        )
        if gswitch.status == "ok" and gunrock.status == "ok":
            assert gswitch.simulated_ms < gunrock.simulated_ms, name
        if gunrock.status == "ok" and medusa.status == "ok":
            assert gunrock.simulated_ms < medusa.simulated_ms, name


def test_medusa_mpm_slowest_medusa(table3):
    """The h-index combiner dwarfs the sum combiner."""
    for name, outcomes in table3.items():
        mpm, peel = outcomes["medusa-mpm"], outcomes["medusa-peel"]
        if mpm.status == "ok" and peel.status == "ok":
            assert mpm.simulated_ms > peel.simulated_ms, name


def test_failure_pattern_on_big_graphs(table3):
    """The paper's bottom rows: systems die, Ours does not."""
    for name in ("webbase-2001", "it-2004"):
        if name not in table3:
            pytest.skip("big datasets not in this sweep")
        outcomes = table3[name]
        assert outcomes["gpu-ours"].status == "ok"
        assert outcomes["medusa-peel"].status == "oom"
        assert outcomes["gunrock"].status == "oom"
        assert outcomes["vetga"].status == "load-timeout"


def test_vetga_loads_exceed_budget_on_last_four(table3):
    last_four = ("arabic-2005", "uk-2005", "webbase-2001", "it-2004")
    present = [n for n in last_four if n in table3]
    if not present:
        pytest.skip("big datasets not in this sweep")
    for name in present:
        assert table3[name]["vetga"].status == "load-timeout", name


def test_benchmark_gswitch_walltime(benchmark):
    from repro.systems.gswitch import gswitch_decompose

    graph = datasets.load("web-Google")
    result = benchmark(gswitch_decompose, graph)
    assert result.kmax > 0
