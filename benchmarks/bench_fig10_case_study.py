"""Fig. 10 — the temporal co-citation case study.

Builds the synthetic ArnetMiner-style corpus, decomposes the two
snapshots, and prints the three word-cloud regions (S1 n S2, S2 - S1,
S1 - S2) exactly as the paper's figure organises them.  Also
benchmarks repeated decomposition of evolving snapshots — the use case
("lightning fast k-core decomposition ... performed frequently or even
continuously on network snapshots") that motivates the case study.
"""

import pytest

from repro.analysis.case_study import (
    author_interaction_snapshot,
    compare_snapshots,
    synthesize_citation_corpus,
)
from repro.bench.tables import write_json, write_table
from repro.core.fastpath import peel_fast

YEAR1, YEAR2 = 1992, 2000


@pytest.fixture(scope="module")
def corpus():
    return synthesize_citation_corpus()


@pytest.fixture(scope="module")
def result(corpus):
    return compare_snapshots(corpus, YEAR1, YEAR2)


def test_fig10_case_study(result, corpus, benchmark):
    graph, _ = author_interaction_snapshot(corpus, YEAR1)
    benchmark(peel_fast, graph)
    write_table(
        "fig10_case_study",
        "Fig. 10: co-citation network analysis\n"
        "=====================================\n" + result.summary(),
    )
    write_json(
        "fig10_case_study",
        "Fig. 10: co-citation network analysis",
        ["snapshot", "kmax"],
        [[f"G1 ({YEAR1})", result.kmax1], [f"G2 ({YEAR2})", result.kmax2]],
        qualitative={
            "persistent_authors": len(result.persistent),
            "emerged_authors": len(result.emerged),
            "dropped_authors": len(result.dropped),
            "deeper_second_core": result.kmax2 > result.kmax1,
        },
    )


def test_all_three_regions_nonempty(result):
    assert result.persistent, "centre region empty: no cross-era authors"
    assert result.emerged, "middle ring empty: no newly-active authors"
    assert result.dropped, "bottom region empty: nobody fell out"


def test_later_snapshot_has_deeper_core(result):
    """The paper's G2 has k_max 18 > G1's 12."""
    assert result.kmax2 > result.kmax1


def test_persistent_dominates(result):
    """Fig. 10's centre is the biggest region: the field's stable
    elite spans both eras."""
    assert len(result.persistent) > len(result.dropped)


def test_benchmark_snapshot_decomposition(benchmark, corpus):
    graph, _ = author_interaction_snapshot(corpus, YEAR2)
    core = benchmark(peel_fast, graph)
    assert core.max() > 0


def test_benchmark_continuous_snapshots(benchmark, corpus):
    """Decompose a sliding window of yearly snapshots — the evolving-
    network monitoring workload."""
    graphs = [
        author_interaction_snapshot(corpus, year)[0]
        for year in range(1996, 2001)
    ]

    def sweep():
        return [int(peel_fast(g).max()) for g in graphs]

    kmaxes = benchmark(sweep)
    assert all(k > 0 for k in kmaxes)
