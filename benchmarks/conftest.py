"""Shared benchmark fixtures.

Set ``REPRO_BENCH_DATASETS=small`` to restrict the sweeps to the eight
smallest dataset analogues (quick sanity runs); the default regenerates
every table over all 20 datasets like the paper.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.runner import BenchCache
from repro.graph import datasets


def bench_dataset_names() -> tuple[str, ...]:
    if os.environ.get("REPRO_BENCH_DATASETS", "all") == "small":
        return datasets.small_dataset_names(8)
    return datasets.dataset_names()


@pytest.fixture(scope="session")
def dataset_names():
    return bench_dataset_names()


@pytest.fixture(scope="session")
def cache():
    """Memoised program outcomes shared by the Table III and V benches."""
    return BenchCache()
