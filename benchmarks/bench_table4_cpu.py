"""Table IV — computation time of the CPU programs.

Ours (GPU) vs NetworkX, BZ, serial/parallel ParK, serial/parallel
PKC-o, MPM, and serial/parallel PKC, over all datasets.  The shapes to
reproduce: Ours wins everywhere; NetworkX is orders of magnitude off;
serial ParK/PKC-o lose to BZ on high-k_max graphs; PKC's compaction
pays off there; parallel speedups stay far below 48x.
"""

import pytest

from repro.bench.tables import render_table, write_json, write_table
from repro.graph import datasets

COLUMNS = [
    "gpu-ours", "networkx", "bz", "park-serial", "park",
    "pkc-o-serial", "pkc-o", "mpm", "pkc-serial", "pkc",
]


@pytest.fixture(scope="module")
def table4(cache, dataset_names):
    return {
        name: {algo: cache.get(algo, name) for algo in COLUMNS}
        for name in dataset_names
    }


def test_table4_cpu_programs(table4, benchmark):
    from repro.cpu.bz import bz_core_numbers
    benchmark(bz_core_numbers, datasets.load('web-Google'))
    rows = [
        [name] + [outcomes[a].cell for a in COLUMNS]
        for name, outcomes in table4.items()
    ]
    title = "Table IV: computation time of CPU programs (simulated ms)"
    columns = ["dataset"] + COLUMNS
    write_table("table4_cpu",
                render_table(title, columns, rows, highlight_min=True))
    write_json("table4_cpu", title, columns, rows,
               qualitative={
                   "gpu_always_wins": all(
                       o[a].status != "ok"
                       or o[a].simulated_ms > o["gpu-ours"].simulated_ms
                       for o in table4.values() for a in COLUMNS[1:]
                   ),
               })


def test_gpu_wins_over_every_cpu_program(table4):
    """Paper: "in all cases Ours is a clear winner"."""
    for name, outcomes in table4.items():
        ours = outcomes["gpu-ours"].simulated_ms
        for algo in COLUMNS[1:]:
            o = outcomes[algo]
            if o.status == "ok":
                assert o.simulated_ms > ours, (name, algo)


def test_networkx_orders_of_magnitude_slower(table4):
    for name, outcomes in table4.items():
        nxr, bz = outcomes["networkx"], outcomes["bz"]
        if nxr.status == "ok":
            assert nxr.simulated_ms > 30 * bz.simulated_ms, name


def test_serial_park_loses_to_bz_on_high_kmax(table4):
    """The indochina effect: per-round full scans."""
    name = "indochina-2004"
    if name not in table4:
        pytest.skip("indochina not in this sweep")
    outcomes = table4[name]
    assert outcomes["park-serial"].simulated_ms > 2 * outcomes["bz"].simulated_ms


def test_pkc_compaction_beats_pkc_o_on_high_kmax(table4):
    deep = [n for n in ("indochina-2004", "webbase-2001", "it-2004")
            if n in table4]
    if not deep:
        pytest.skip("no high-kmax datasets in this sweep")
    for name in deep:
        outcomes = table4[name]
        assert (
            outcomes["pkc-serial"].simulated_ms
            < outcomes["pkc-o-serial"].simulated_ms
        ), name


def test_parallel_speedup_far_below_48x(table4):
    """Paper: parallel ParK/PKC/MPM are far from 48x over serial."""
    for name, outcomes in table4.items():
        for serial, parallel in (
            ("park-serial", "park"), ("pkc-serial", "pkc"),
        ):
            s, p = outcomes[serial], outcomes[parallel]
            if s.status == "ok" and p.status == "ok" and p.simulated_ms > 0:
                assert s.simulated_ms / p.simulated_ms < 30, (name, parallel)


def test_mpm_workload_exceeds_peeling(table4):
    """MPM recomputes vertices; on most datasets it loses to PKC."""
    losses = sum(
        1
        for outcomes in table4.values()
        if outcomes["mpm"].status == "ok"
        and outcomes["mpm"].simulated_ms > outcomes["pkc"].simulated_ms
    )
    assert losses >= len(table4) * 0.7


def test_benchmark_bz_walltime(benchmark):
    from repro.cpu.bz import bz_core_numbers

    graph = datasets.load("soc-LiveJournal1")
    core = benchmark(bz_core_numbers, graph)
    assert core.max() > 0


def test_benchmark_pkc_walltime(benchmark):
    from repro.cpu.pkc import pkc_decompose

    graph = datasets.load("web-Google")
    result = benchmark(pkc_decompose, graph)
    assert result.kmax > 0
