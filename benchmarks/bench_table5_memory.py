"""Table V — peak device global-memory usage.

The paper's columns: Ours, SM, VP, EC, BC, VETGA, Medusa-MPM,
Medusa-Peel, Gunrock, GSwitch; "N/A" where the program failed (OOM or
force-terminated before completing).  The shape to reproduce: the
tailor-made kernel's footprint (graph + fixed block buffers) is the
overall winner on large graphs, the compaction variants add a constant,
and the systems' edge-proportional state blows up.
"""

import pytest

from repro.bench.runner import run_program
from repro.bench.tables import render_table, write_json, write_table
from repro.graph import datasets

KERNEL_COLUMNS = ["gpu-ours", "gpu-sm", "gpu-vp", "gpu-ec", "gpu-bc"]
SYSTEM_COLUMNS = ["vetga", "medusa-mpm", "medusa-peel", "gunrock", "gswitch"]
COLUMNS = KERNEL_COLUMNS + SYSTEM_COLUMNS


@pytest.fixture(scope="module")
def table5(cache, dataset_names):
    outcomes = {}
    for name in dataset_names:
        per_algo = {}
        for algo in COLUMNS:
            if algo in SYSTEM_COLUMNS or algo == "gpu-ours":
                per_algo[algo] = cache.get(algo, name)
            else:
                per_algo[algo] = run_program(algo, name)
        outcomes[name] = per_algo
    return outcomes


def test_table5_peak_memory(table5, benchmark):
    from repro.core.host import gpu_peel
    benchmark(gpu_peel, datasets.load('amazon0601'))
    rows = [
        [name] + [outcomes[a].memory_cell for a in COLUMNS]
        for name, outcomes in table5.items()
    ]
    title = "Table V: peak device global-memory usage (MB; N/A = failed run)"
    columns = ["dataset"] + COLUMNS
    # the telemetry behind every cell: which arrays were live at each
    # program's memory peak, summing exactly to the peak (the schema
    # validator enforces the identity)
    attribution = {
        name: per_algo
        for name, outcomes in table5.items()
        if (per_algo := {
            a: {
                "peak_bytes": outcomes[a].peak_bytes,
                "arrays": outcomes[a].attribution,
            }
            for a in COLUMNS
            if outcomes[a].attribution is not None
        })
    }
    write_table("table5_memory", render_table(title, columns, rows))
    write_json("table5_memory", title, columns, rows,
               qualitative={
                   "na_cells": sum(
                       1 for outcomes in table5.values()
                       for a in COLUMNS if outcomes[a].memory_cell == "N/A"
                   ),
               },
               attribution=attribution)


def test_buffering_variants_match_ours_footprint(table5):
    """Paper: Ours, SM and VP share one memory column — buffering
    changes shared memory, not global memory."""
    for name, outcomes in table5.items():
        ours = outcomes["gpu-ours"].peak_memory_mb
        assert outcomes["gpu-sm"].peak_memory_mb == pytest.approx(ours)
        assert outcomes["gpu-vp"].peak_memory_mb == pytest.approx(ours)


def test_compaction_variants_add_constant_scratch(table5):
    """Paper: EC and BC show one constant extra over Ours."""
    deltas = set()
    for name, outcomes in table5.items():
        ours = outcomes["gpu-ours"].peak_memory_mb
        for algo in ("gpu-ec", "gpu-bc"):
            extra = outcomes[algo].peak_memory_mb - ours
            assert extra > 0, (name, algo)
            deltas.add(round(extra, 3))
    assert len(deltas) == 1  # the same scratch size everywhere


def test_ours_wins_memory_on_large_graphs(table5):
    """On the big web graphs every surviving system uses more memory
    than the tailor-made kernel."""
    large = [n for n in ("uk-2002", "arabic-2005", "uk-2005",
                         "webbase-2001", "it-2004") if n in table5]
    if not large:
        pytest.skip("big datasets not in this sweep")
    for name in large:
        outcomes = table5[name]
        ours = outcomes["gpu-ours"].peak_memory_mb
        for algo in SYSTEM_COLUMNS:
            mem = outcomes[algo].peak_memory_mb
            if mem is not None:
                assert mem > ours, (name, algo)


def test_failed_runs_reported_na(table5):
    if "it-2004" not in table5:
        pytest.skip("big datasets not in this sweep")
    outcomes = table5["it-2004"]
    assert outcomes["medusa-peel"].memory_cell == "N/A"
    assert outcomes["vetga"].memory_cell == "N/A"


def test_ours_footprint_grows_with_graph(table5):
    names = list(table5)
    if len(names) < 2:
        pytest.skip("need several datasets")
    first, last = table5[names[0]], table5[names[-1]]
    assert (
        last["gpu-ours"].peak_memory_mb > first["gpu-ours"].peak_memory_mb
    )
