"""Table I — the 20 datasets.

Regenerates the dataset table with the analogue's measured statistics
side by side with the published numbers, and benchmarks dataset
generation plus the reference decomposition.
"""

import pytest

from repro.bench.tables import render_table, write_json, write_table
from repro.core.fastpath import peel_fast
from repro.graph import datasets


def test_table1_dataset_statistics(dataset_names, benchmark):
    benchmark(datasets.load, dataset_names[0])
    rows = []
    for name in dataset_names:
        spec = datasets.get_spec(name)
        graph = datasets.load(name)
        kmax = int(peel_fast(graph).max())
        paper = spec.paper
        rows.append([
            name,
            f"{graph.num_vertices:,}", f"{paper.num_vertices:,}",
            f"{graph.num_edges:,}", f"{paper.num_edges:,}",
            f"{graph.average_degree:.1f}", f"{paper.avg_degree:.1f}",
            f"{graph.degree_std:.0f}", f"{paper.degree_std:.0f}",
            f"{kmax}", f"{paper.kmax}",
            spec.category,
        ])
        # fidelity assertions on the characteristics the paper's
        # analysis depends on (scaled, so only shapes are compared)
        assert graph.num_vertices > 0
    title = "Table I: datasets (analogue vs paper)"
    columns = ["dataset", "|V|", "|V| paper", "|E|", "|E| paper",
               "davg", "davg paper", "std", "std paper",
               "kmax", "kmax paper", "category"]
    write_table("table1_datasets", render_table(title, columns, rows))
    write_json("table1_datasets", title, columns, rows,
               qualitative={"num_datasets": len(rows)})


def test_dataset_edge_order_matches_paper(dataset_names):
    """The ascending-|E| order of Table I must be preserved (it drives
    the OOM pattern of Tables III/V)."""
    sizes = [datasets.load(n).num_edges for n in dataset_names]
    violations = sum(1 for a, b in zip(sizes, sizes[1:]) if a > b)
    assert violations <= 3


@pytest.mark.parametrize("name", ["amazon0601", "trackers"])
def test_benchmark_generation(benchmark, name):
    spec = datasets.get_spec(name)
    graph = benchmark(spec.build)
    assert graph.num_vertices > 0


def test_benchmark_reference_decomposition(benchmark):
    graph = datasets.load("web-Google")
    core = benchmark(peel_fast, graph)
    assert core.max() > 0
