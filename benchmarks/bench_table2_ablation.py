"""Table II — ablation study of the kernel optimisation variants.

Runs the nine program versions (Ours, SM, VP, BC, BC+SM, BC+VP, EC,
EC+SM, EC+VP) on every dataset and reports simulated milliseconds.
The paper's finding to reproduce: the *basic* program wins everywhere
except ``trackers``, where VP wins; BC beats EC; compaction and
buffering overheads outweigh their savings.
"""

import numpy as np
import pytest

from repro.bench.tables import render_table, write_json, write_table
from repro.core.host import gpu_peel
from repro.core.variants import variant_names
from repro.cpu.bz import bz_core_numbers
from repro.graph import datasets

VARIANTS = variant_names()


@pytest.fixture(scope="module")
def ablation_rows(dataset_names):
    """(dataset -> variant -> simulated ms), computed once."""
    rows = {}
    for name in dataset_names:
        graph = datasets.load(name)
        reference = bz_core_numbers(graph)
        per_variant = {}
        for variant in VARIANTS:
            result = gpu_peel(graph, variant=variant)
            assert np.array_equal(result.core, reference), (name, variant)
            per_variant[variant] = result.simulated_ms
        rows[name] = per_variant
    return rows


def test_table2_ablation(ablation_rows, benchmark):
    benchmark(gpu_peel, datasets.load('web-Google'), 'ours')
    table_rows = [
        [name] + [f"{per_variant[v]:.3f}" for v in VARIANTS]
        for name, per_variant in ablation_rows.items()
    ]
    title = "Table II: ablation study (simulated ms; * = row winner)"
    columns = ["dataset"] + list(VARIANTS)
    write_table("table2_ablation",
                render_table(title, columns, table_rows, highlight_min=True))
    winners = {
        name: min(per_variant, key=per_variant.get)
        for name, per_variant in ablation_rows.items()
    }
    write_json("table2_ablation", title, columns, table_rows,
               qualitative={
                   "winners": winners,
                   "ours_wins": sum(w == "ours" for w in winners.values()),
               })


def test_basic_variant_wins_almost_everywhere(ablation_rows):
    """Paper: "our basic GPU algorithm performs the best on all
    datasets except for trackers where VP performs the best"."""
    winners = {
        name: min(per_variant, key=per_variant.get)
        for name, per_variant in ablation_rows.items()
    }
    non_ours = {n: w for n, w in winners.items() if w != "ours"}
    # allow only buffering variants to steal wins, on a small minority
    assert all(w in ("vp", "sm") for w in non_ours.values()), winners
    assert len(non_ours) <= max(1, len(winners) // 5), winners


def test_vp_wins_on_trackers(ablation_rows):
    if "trackers" not in ablation_rows:
        pytest.skip("trackers not in this sweep")
    per_variant = ablation_rows["trackers"]
    assert min(per_variant, key=per_variant.get) == "vp"


def test_compaction_slows_down(ablation_rows):
    """BC and EC must be slower than Ours on every dataset."""
    for name, per_variant in ablation_rows.items():
        assert per_variant["bc"] > per_variant["ours"], name
        assert per_variant["ec"] > per_variant["ours"], name


def test_ec_slower_than_bc(ablation_rows):
    """Paper: "BC is often twice as fast as EC"."""
    ratios = [
        per_variant["ec"] / per_variant["bc"]
        for per_variant in ablation_rows.values()
    ]
    assert np.mean(ratios) > 1.15


@pytest.mark.parametrize("variant", ["ours", "bc", "ec"])
def test_benchmark_kernel_walltime(benchmark, variant):
    """Real wall-time of the simulated kernels (pytest-benchmark)."""
    graph = datasets.load("web-Google")
    result = benchmark(gpu_peel, graph, variant)
    assert result.kmax > 0
